package storage

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func openTest(t *testing.T, dir string, opts Options) *BlobStore {
	t.Helper()
	opts.Dir = dir
	bs, err := OpenBlobStore(opts)
	if err != nil {
		t.Fatalf("OpenBlobStore: %v", err)
	}
	t.Cleanup(func() { bs.Close() })
	return bs
}

func mustGet(t *testing.T, bs *BlobStore, key string) []byte {
	t.Helper()
	data, ok, err := bs.Get(key)
	if err != nil {
		t.Fatalf("Get(%q): %v", key, err)
	}
	if !ok {
		t.Fatalf("Get(%q): missing", key)
	}
	return data
}

func TestBlobRoundtrip(t *testing.T) {
	bs := openTest(t, t.TempDir(), Options{})
	if err := bs.Put("result/aa", []byte("hello")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if got := mustGet(t, bs, "result/aa"); string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
	if size, ok := bs.Stat("result/aa"); !ok || size != 5 {
		t.Fatalf("Stat = %d,%v", size, ok)
	}
	if _, ok, _ := bs.Get("result/bb"); ok {
		t.Fatal("phantom key")
	}
	// Replace wins.
	if err := bs.Put("result/aa", []byte("world!")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if got := mustGet(t, bs, "result/aa"); string(got) != "world!" {
		t.Fatalf("after replace got %q", got)
	}
	if bs.Len() != 1 {
		t.Fatalf("Len = %d", bs.Len())
	}
	if err := bs.Delete("result/aa"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, ok, _ := bs.Get("result/aa"); ok {
		t.Fatal("key survived delete")
	}
}

func TestBlobSegmentRollAndReopen(t *testing.T) {
	dir := t.TempDir()
	bs := openTest(t, dir, Options{SegmentBytes: 512})
	payload := bytes.Repeat([]byte("x"), 100)
	for i := 0; i < 40; i++ {
		if err := bs.Put(fmt.Sprintf("k%02d", i), payload); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if bs.Segments() < 3 {
		t.Fatalf("expected multiple segments, got %d", bs.Segments())
	}
	if err := bs.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	re := openTest(t, dir, Options{SegmentBytes: 512})
	if re.Len() != 40 {
		t.Fatalf("reopen Len = %d", re.Len())
	}
	for i := 0; i < 40; i++ {
		if got := mustGet(t, re, fmt.Sprintf("k%02d", i)); !bytes.Equal(got, payload) {
			t.Fatalf("blob %d mismatch after reopen", i)
		}
	}
}

func TestBlobTornTailTruncatedOnReopen(t *testing.T) {
	dir := t.TempDir()
	bs := openTest(t, dir, Options{})
	if err := bs.Put("alive", []byte("data")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := bs.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Simulate a crash mid-append: garbage on the tail of the newest segment.
	segs, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	newest := segs[len(segs)-1]
	f, err := os.OpenFile(newest, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn, _ := encodeRecord(recBlob, "torn", []byte("partial-record"))
	if _, err := f.Write(torn[:len(torn)-3]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re := openTest(t, dir, Options{})
	if got := mustGet(t, re, "alive"); string(got) != "data" {
		t.Fatalf("lost blob across torn tail: %q", got)
	}
	if _, ok, _ := re.Get("torn"); ok {
		t.Fatal("torn record must not surface")
	}
	// The torn bytes must be gone so appends land on a clean boundary.
	if err := re.Put("after", []byte("ok")); err != nil {
		t.Fatalf("Put after truncate: %v", err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2 := openTest(t, dir, Options{})
	if string(mustGet(t, re2, "after")) != "ok" {
		t.Fatal("append after torn-tail truncate did not survive")
	}
}

func TestBlobTornSealedSegmentIsCorruption(t *testing.T) {
	dir := t.TempDir()
	bs := openTest(t, dir, Options{SegmentBytes: 256})
	payload := bytes.Repeat([]byte("y"), 100)
	for i := 0; i < 10; i++ {
		if err := bs.Put(fmt.Sprintf("k%d", i), payload); err != nil {
			t.Fatal(err)
		}
	}
	if bs.Segments() < 2 {
		t.Fatalf("need a sealed segment, have %d", bs.Segments())
	}
	if err := bs.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	// Flip a byte in the middle of the oldest (sealed) segment.
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenBlobStore(Options{Dir: dir, SegmentBytes: 256}); err == nil {
		t.Fatal("corrupt sealed segment must fail Open")
	} else if !strings.Contains(err.Error(), "torn record") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestBlobTombstoneSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	bs := openTest(t, dir, Options{})
	if err := bs.Put("gone", []byte("bye")); err != nil {
		t.Fatal(err)
	}
	if err := bs.Put("kept", []byte("hi")); err != nil {
		t.Fatal(err)
	}
	// Phase one only: tombstone appended, no compaction before "crash".
	if err := bs.Delete("gone"); err != nil {
		t.Fatal(err)
	}
	if err := bs.Close(); err != nil {
		t.Fatal(err)
	}
	re := openTest(t, dir, Options{})
	if _, ok, _ := re.Get("gone"); ok {
		t.Fatal("tombstoned blob resurrected on reopen")
	}
	if string(mustGet(t, re, "kept")) != "hi" {
		t.Fatal("live blob lost")
	}
}

func TestBlobDuplicateRecordsAfterInterruptedCompaction(t *testing.T) {
	// A crash between compaction's copy-into-active and the removal of
	// the old segment leaves the same key in two segments. Replay must
	// keep exactly one live copy (the later one) and not error.
	dir := t.TempDir()
	bs := openTest(t, dir, Options{})
	if err := bs.Put("dup", []byte("old-copy")); err != nil {
		t.Fatal(err)
	}
	if err := bs.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	newest := segs[len(segs)-1]
	var maxID uint64
	fmt.Sscanf(strings.TrimSuffix(filepath.Base(newest), segSuffix), "%d", &maxID)
	rec, _ := encodeRecord(recBlob, "dup", []byte("new-copy"))
	if err := os.WriteFile(segmentPath(dir, maxID+1), rec, 0o644); err != nil {
		t.Fatal(err)
	}
	re := openTest(t, dir, Options{})
	if re.Len() != 1 {
		t.Fatalf("Len = %d, want 1", re.Len())
	}
	if got := mustGet(t, re, "dup"); string(got) != "new-copy" {
		t.Fatalf("later copy must win, got %q", got)
	}
}

func TestBlobMaxBytesEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	bs := openTest(t, dir, Options{MaxBytes: 64 << 10})
	payload := bytes.Repeat([]byte("z"), 1024)
	for i := 0; i < 200; i++ {
		if err := bs.Put(fmt.Sprintf("blob/%03d", i), payload); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
		if db := bs.DiskBytes(); db > 64<<10 {
			t.Fatalf("disk bytes %d over bound after put %d", db, i)
		}
	}
	if bs.Len() >= 200 {
		t.Fatal("nothing evicted")
	}
	if st := bs.Stats(); st.Evicted == 0 {
		t.Fatal("evicted counter did not move")
	}
	// Most recent blob must still be there; the oldest must be gone.
	if _, ok, _ := bs.Get("blob/199"); !ok {
		t.Fatal("most recent blob evicted")
	}
	if _, ok, _ := bs.Get("blob/000"); ok {
		t.Fatal("oldest blob survived the bound")
	}
	// The bound must hold across a reopen too.
	if err := bs.Close(); err != nil {
		t.Fatal(err)
	}
	re := openTest(t, dir, Options{MaxBytes: 64 << 10})
	if db := re.DiskBytes(); db > 64<<10 {
		t.Fatalf("disk bytes %d over bound after reopen", db)
	}
	if _, ok, _ := re.Get("blob/199"); !ok {
		t.Fatal("recent blob lost across reopen")
	}
}

func TestBlobSweepReclaimsAndCompacts(t *testing.T) {
	dir := t.TempDir()
	bs := openTest(t, dir, Options{SegmentBytes: 2048})
	payload := bytes.Repeat([]byte("w"), 512)
	for i := 0; i < 20; i++ {
		prefix := "keep/"
		if i%2 == 0 {
			prefix = "dead/"
		}
		if err := bs.Put(fmt.Sprintf("%s%02d", prefix, i), payload); err != nil {
			t.Fatal(err)
		}
	}
	before := bs.DiskBytes()
	res, err := bs.Sweep(context.Background(), func(key string, age time.Duration) bool {
		return strings.HasPrefix(key, "dead/")
	})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if res.ReclaimedBlobs != 10 {
		t.Fatalf("reclaimed %d blobs, want 10", res.ReclaimedBlobs)
	}
	if res.ReclaimedBytes != 10*512 {
		t.Fatalf("reclaimed %d bytes", res.ReclaimedBytes)
	}
	if bs.DiskBytes() >= before {
		t.Fatalf("compaction did not shrink disk: %d -> %d", before, bs.DiskBytes())
	}
	for i := 1; i < 20; i += 2 {
		if _, ok, _ := bs.Get(fmt.Sprintf("keep/%02d", i)); !ok {
			t.Fatalf("keep/%02d lost by sweep", i)
		}
	}
	if st := bs.Stats(); st.Sweeps != 1 || st.ReclaimedBlobs != 10 || st.Compactions == 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Everything must still be intact after a reopen (phase two durable).
	if err := bs.Close(); err != nil {
		t.Fatal(err)
	}
	re := openTest(t, dir, Options{SegmentBytes: 2048})
	if re.Len() != 10 {
		t.Fatalf("reopen Len = %d, want 10", re.Len())
	}
}

func TestBlobSweepGracePeriod(t *testing.T) {
	bs := openTest(t, t.TempDir(), Options{})
	if err := bs.Put("young", []byte("x")); err != nil {
		t.Fatal(err)
	}
	_, err := bs.Sweep(context.Background(), func(key string, age time.Duration) bool {
		return age > time.Hour // nothing is that old
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := bs.Get("young"); !ok {
		t.Fatal("blob inside grace period reclaimed")
	}
}

func TestBlobIterate(t *testing.T) {
	bs := openTest(t, t.TempDir(), Options{})
	for _, k := range []string{"trace/b", "result/a", "trace/a", "result/c"} {
		if err := bs.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	if err := bs.Iterate("trace/", func(in BlobInfo) error {
		got = append(got, in.Key)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "trace/a" || got[1] != "trace/b" {
		t.Fatalf("Iterate = %v", got)
	}
	var all []string
	if err := bs.Iterate("", func(in BlobInfo) error {
		all = append(all, in.Key)
		if in.Size != int64(len(in.Key)) {
			t.Fatalf("size mismatch for %s", in.Key)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("full Iterate saw %d keys", len(all))
	}
	sentinel := fmt.Errorf("stop")
	n := 0
	err := bs.Iterate("", func(BlobInfo) error {
		n++
		return sentinel
	})
	if err != sentinel || n != 1 {
		t.Fatalf("early-stop: err=%v n=%d", err, n)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := WriteFileAtomic(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("v2-longer"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "v2-longer" {
		t.Fatalf("read back %q, %v", data, err)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Fatalf("temp files left behind: %d entries", len(ents))
	}
}

func TestAppendLog(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	l, err := OpenAppendLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Write([]byte("one\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Write([]byte("two\n")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if string(data) != "one\ntwo\n" {
		t.Fatalf("log = %q", data)
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if fi, _ := os.Stat(path); fi.Size() != 0 {
		t.Fatalf("Reset left %d bytes", fi.Size())
	}
	if _, err := l.Write([]byte("three\n")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, _ = os.ReadFile(path)
	if string(data) != "three\n" {
		t.Fatalf("after reset log = %q", data)
	}
}
