// Package storage is the shared durability layer under the result store
// and the job queue. It owns every temp-file/rename/fsync idiom in the
// tree: callers describe *what* must survive a crash (an atomic snapshot,
// an append-only log, a content-addressed blob) and storage decides how
// the bytes reach disk.
package storage

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic durably replaces path with data using the
// temp-file → fsync → rename → dir-fsync idiom. After it returns nil,
// a crash at any point leaves either the old content or the new content
// at path, never a torn mix.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("storage: create temp: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if err := tmp.Chmod(perm); err != nil {
		cleanup()
		return fmt.Errorf("storage: chmod temp: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("storage: write temp: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("storage: fsync temp: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("storage: close temp: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("storage: rename: %w", err)
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory so that a rename, create, or remove inside
// it is durable. Errors from platforms that refuse to fsync directories
// are reported as-is; callers on Linux can treat any error as fatal.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("storage: open dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("storage: fsync dir %s: %w", dir, err)
	}
	return nil
}

// RemoveDurable removes path and fsyncs its parent directory so the
// deletion survives a crash. A missing file is not an error.
func RemoveDurable(path string) error {
	if err := os.Remove(path); err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("storage: remove: %w", err)
	}
	return SyncDir(filepath.Dir(path))
}

// AppendLog is an append-only log file with explicit sync points — the
// shape a write-ahead log wants. Opening it creates the file if needed
// and makes the creation durable.
type AppendLog struct {
	f *os.File
}

// OpenAppendLog opens (creating if absent) an append-only log at path.
func OpenAppendLog(path string) (*AppendLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open log: %w", err)
	}
	if err := SyncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, err
	}
	return &AppendLog{f: f}, nil
}

// Write appends p to the log. The bytes are not durable until Sync.
func (l *AppendLog) Write(p []byte) (int, error) { return l.f.Write(p) }

// Sync makes all previously written bytes durable.
func (l *AppendLog) Sync() error { return l.f.Sync() }

// Reset truncates the log to zero length and makes the truncation
// durable. Used after the logged state has been captured in a snapshot.
func (l *AppendLog) Reset() error {
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("storage: truncate log: %w", err)
	}
	return l.f.Sync()
}

// Close closes the underlying file without an implicit sync.
func (l *AppendLog) Close() error { return l.f.Close() }
