package storage

import (
	"context"
	"sort"
	"time"

	"dramdig/internal/obs"
)

// SweepResult describes what a single Sweep accomplished.
type SweepResult struct {
	ReclaimedBlobs int
	ReclaimedBytes int64
	Evicted        int
	Compactions    int
	DiskBytes      int64
}

// Sweep runs one garbage-collection pass under a `storage.gc` span:
//
//  1. every live blob for which reclaim(key, age) returns true is
//     deleted (a durable tombstone — phase one of the two-phase delete);
//  2. if the store is over Options.MaxBytes, least-recently-used blobs
//     are evicted;
//  3. dead-heavy segments are compacted, physically reclaiming the
//     space (phase two).
//
// reclaim may be nil, in which case only bound enforcement and
// compaction run. age is the time since the blob was written (or since
// the store was opened, for blobs recovered from disk) — callers use it
// to grace-period blobs that may still be getting referenced.
func (bs *BlobStore) Sweep(ctx context.Context, reclaim func(key string, age time.Duration) bool) (SweepResult, error) {
	_, sp := obs.Start(ctx, "storage.gc")
	res, err := bs.sweep(reclaim)
	sp.SetAttrInt("reclaimed_blobs", int64(res.ReclaimedBlobs))
	sp.SetAttrInt("reclaimed_bytes", res.ReclaimedBytes)
	sp.SetAttrInt("evicted", int64(res.Evicted))
	sp.SetAttrInt("compactions", int64(res.Compactions))
	sp.SetAttrInt("disk_bytes", res.DiskBytes)
	if err != nil {
		sp.SetError(err)
	}
	sp.End()
	return res, err
}

func (bs *BlobStore) sweep(reclaim func(key string, age time.Duration) bool) (SweepResult, error) {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	var res SweepResult
	if bs.closed {
		res.DiskBytes = bs.bytes
		return res, nil
	}
	before := bs.stats
	now := time.Now()
	if reclaim != nil {
		var doomed []string
		for key, loc := range bs.index {
			if reclaim(key, now.Sub(loc.at)) {
				doomed = append(doomed, key)
			}
		}
		sort.Strings(doomed)
		for _, key := range doomed {
			size, err := bs.deleteLocked(key)
			if err != nil {
				return res, err
			}
			res.ReclaimedBlobs++
			res.ReclaimedBytes += size
			bs.stats.ReclaimedBlobs++
			bs.stats.ReclaimedBytes += uint64(size)
		}
		if len(doomed) > 0 && !bs.opts.SyncEvery {
			// Phase one must be durable before compaction removes the
			// records' only other copy.
			if err := bs.f.Sync(); err != nil {
				return res, err
			}
		}
	}
	if bs.opts.MaxBytes > 0 && bs.bytes > bs.opts.MaxBytes {
		if err := bs.enforceBoundLocked(); err != nil {
			return res, err
		}
	}
	// Opportunistic hygiene: rewrite sealed segments that are mostly dead
	// even when no bound is configured.
	if err := bs.compactDeadLocked(); err != nil {
		return res, err
	}
	bs.stats.Sweeps++
	res.Evicted = int(bs.stats.Evicted - before.Evicted)
	res.Compactions = int(bs.stats.Compactions - before.Compactions)
	res.DiskBytes = bs.bytes
	return res, nil
}

// compactDeadLocked rewrites every sealed segment whose live ratio has
// dropped below half.
func (bs *BlobStore) compactDeadLocked() error {
	var victims []*segment
	for _, s := range bs.segs {
		if s == bs.active || s.bytes == 0 {
			continue
		}
		if s.live*2 < s.bytes {
			victims = append(victims, s)
		}
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].id < victims[j].id })
	for _, s := range victims {
		if err := bs.compactSegmentLocked(s); err != nil {
			return err
		}
	}
	return nil
}
