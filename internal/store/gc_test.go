package store

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dramdig/internal/storage"
)

func writeFlatRecord(t *testing.T, dir, fingerprint string) {
	t.Helper()
	data, err := json.MarshalIndent(testRecord(t, fingerprint), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, fingerprint+".json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestStoreMigratesFlatLayout(t *testing.T) {
	dir := t.TempDir()
	writeFlatRecord(t, dir, fp(1))
	writeFlatRecord(t, dir, fp(2))
	tracePayload := []byte("DRTR-legacy-trace")
	if err := os.WriteFile(filepath.Join(dir, fp(1)+".trace"), tracePayload, 0o644); err != nil {
		t.Fatal(err)
	}
	// Junk that must not migrate or break Open.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("Open over flat layout: %v", err)
	}
	defer s.Close()
	for i := 1; i <= 2; i++ {
		rec, ok, err := s.Get(fp(i))
		if err != nil || !ok {
			t.Fatalf("record %d after migration: ok=%v err=%v", i, ok, err)
		}
		if rec.Fingerprint != fp(i) {
			t.Fatalf("record %d keyed %s", i, rec.Fingerprint)
		}
	}
	got, ok, err := s.GetTrace(fp(1))
	if err != nil || !ok || string(got) != string(tracePayload) {
		t.Fatalf("trace after migration: %q ok=%v err=%v", got, ok, err)
	}
	// Flat files are gone; segments and the junk file remain.
	for _, name := range []string{fp(1) + ".json", fp(2) + ".json", fp(1) + ".trace"} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("flat file %s survived migration", name)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "segments")); err != nil {
		t.Fatalf("no segments directory: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "notes.txt")); err != nil {
		t.Fatalf("unrelated file disturbed: %v", err)
	}
}

func TestStoreCrashDuringMigration(t *testing.T) {
	// A crash mid-migration leaves some records in both layouts (the blob
	// copy is written before the flat file is removed) and possibly a torn
	// tail on the active segment. Reopening must serve every record and
	// re-run the migration idempotently.
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testRecord(t, fp(1))); err != nil {
		t.Fatal(err)
	}
	if err := s.PutTrace(fp(1), []byte("trace-one")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Record 1 exists in segments AND again as a flat file (migration
	// copied it but crashed before the remove)...
	writeFlatRecord(t, dir, fp(1))
	// ...record 2 only as a flat file (its migration never started)...
	writeFlatRecord(t, dir, fp(2))
	// ...and the crash tore the tail of the active segment.
	segs, err := filepath.Glob(filepath.Join(dir, "segments", "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("\x62torn-partial")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("reopen after migration crash: %v", err)
	}
	defer re.Close()
	for i := 1; i <= 2; i++ {
		if _, ok, err := re.Get(fp(i)); err != nil || !ok {
			t.Fatalf("record %d lost across migration crash: ok=%v err=%v", i, ok, err)
		}
	}
	if got, ok, err := re.GetTrace(fp(1)); err != nil || !ok || string(got) != "trace-one" {
		t.Fatalf("trace lost across migration crash: %q ok=%v err=%v", got, ok, err)
	}
	for i := 1; i <= 2; i++ {
		if _, err := os.Stat(filepath.Join(dir, fp(i)+".json")); !os.IsNotExist(err) {
			t.Fatalf("flat file %d survived re-migration", i)
		}
	}
}

func TestStoreGCReapsOrphanedTraces(t *testing.T) {
	// Regression for the orphaned-trace leak: a trace written for a job
	// later evicted from the queue must be reclaimed, while a trace whose
	// job is still retained must never be.
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	orphan, kept := fp(1), fp(2)
	if err := s.PutTrace(orphan, []byte("orphaned-trace-bytes")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutTrace(kept, []byte("referenced-trace-bytes")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testRecord(t, orphan)); err != nil { // results are never orphan-reaped
		t.Fatal(err)
	}
	res, err := s.Sweep(context.Background(), func() map[string]bool {
		return map[string]bool{kept: true}
	})
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if res.ReclaimedBlobs != 1 {
		t.Fatalf("reclaimed %d blobs, want 1", res.ReclaimedBlobs)
	}
	if _, ok, _ := s.GetTrace(orphan); ok {
		t.Fatal("orphaned trace survived GC")
	}
	if _, ok, _ := s.GetTrace(kept); !ok {
		t.Fatal("referenced trace reaped by GC")
	}
	if _, ok, _ := s.Get(orphan); !ok {
		t.Fatal("result record reaped by orphan GC")
	}
	if st := s.StatsSnapshot(); st.GCRuns != 1 || st.GCReclaimedBlobs != 1 {
		t.Fatalf("gc stats = %+v", st)
	}
}

func TestStoreGCReapsOrphanedTracesMemoryTier(t *testing.T) {
	s, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	orphan, kept := fp(1), fp(2)
	if err := s.PutTrace(orphan, []byte("o")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutTrace(kept, []byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sweep(context.Background(), func() map[string]bool {
		return map[string]bool{kept: true}
	}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.GetTrace(orphan); ok {
		t.Fatal("orphaned in-memory trace survived GC")
	}
	if _, ok, _ := s.GetTrace(kept); !ok {
		t.Fatal("referenced in-memory trace reaped")
	}
}

func TestStoreGCGracePeriod(t *testing.T) {
	s, err := Open(Config{Dir: t.TempDir(), GCGrace: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.PutTrace(fp(1), []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sweep(context.Background(), func() map[string]bool { return nil }); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.GetTrace(fp(1)); !ok {
		t.Fatal("trace inside the grace period reclaimed")
	}
}

func TestStoreCrashDuringGC(t *testing.T) {
	// Phase one of the two-phase delete (a durable tombstone) with a crash
	// before phase two (compaction): reopening must not resurrect the
	// reclaimed blob and must not lose any live one.
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutTrace(fp(1), []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutTrace(fp(2), []byte("alive")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Re-enact phase one directly against the segment keyspace, then
	// "crash" (close) without compacting.
	bs, err := storage.OpenBlobStore(storage.Options{Dir: filepath.Join(dir, "segments")})
	if err != nil {
		t.Fatal(err)
	}
	if err := bs.Delete("trace/" + fp(1)); err != nil {
		t.Fatal(err)
	}
	if err := bs.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("reopen after GC crash: %v", err)
	}
	defer re.Close()
	if _, ok, _ := re.GetTrace(fp(1)); ok {
		t.Fatal("tombstoned trace resurrected after GC crash")
	}
	if got, ok, _ := re.GetTrace(fp(2)); !ok || string(got) != "alive" {
		t.Fatal("live trace lost across GC crash")
	}
}

func TestStoreStartGCReapsInBackground(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.PutTrace(fp(1), []byte("orphan")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.StartGC(ctx, 5*time.Millisecond, func() map[string]bool { return nil })
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok, _ := s.GetTrace(fp(1)); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background GC never reaped the orphan")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestStoreIterate(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(testRecord(t, fp(1))); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testRecord(t, fp(2))); err != nil {
		t.Fatal(err)
	}
	if err := s.PutTrace(fp(1), []byte("trace")); err != nil {
		t.Fatal(err)
	}
	count := map[string]int{}
	if err := s.Iterate("", func(key string, size int64) error {
		if size <= 0 {
			return fmt.Errorf("blob %s has size %d", key, size)
		}
		count[key]++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(count) != 3 {
		t.Fatalf("Iterate saw %d keys: %v", len(count), count)
	}
	var traces []string
	if err := s.Iterate("trace/", func(key string, size int64) error {
		traces = append(traces, key)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 || traces[0] != "trace/"+fp(1) {
		t.Fatalf("trace Iterate = %v", traces)
	}
}

func TestStoreNegativeCacheSkipsDisk(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 3; i++ {
		if _, ok, err := s.Get(fp(9)); ok || err != nil {
			t.Fatalf("lookup %d: ok=%v err=%v", i, ok, err)
		}
	}
	st := s.StatsSnapshot()
	if st.NegativeCacheHits < 2 {
		t.Fatalf("negative cache hits = %d, want >= 2", st.NegativeCacheHits)
	}
	// A put must invalidate the cached miss.
	if err := s.Put(testRecord(t, fp(9))); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(fp(9)); !ok || err != nil {
		t.Fatalf("record invisible after put: ok=%v err=%v", ok, err)
	}
}

func TestStoreDiskBoundEviction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, MaxBytes: 32 << 10, SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	payload := make([]byte, 1024)
	for i := 0; i < 100; i++ {
		if err := s.PutTrace(fmt.Sprintf("%064x", 0x1000+i), payload); err != nil {
			t.Fatal(err)
		}
	}
	st := s.StatsSnapshot()
	if st.DiskBytes > 32<<10 {
		t.Fatalf("disk bytes %d over the bound", st.DiskBytes)
	}
	if st.GCEvicted == 0 {
		t.Fatal("no evictions under the bound")
	}
}
