// Package store is a content-addressed cache of reverse-engineering
// results, keyed by machine-definition fingerprints (see
// machine.Definition.Fingerprint). It layers an in-memory LRU front over
// optional segment-based persistence (internal/storage), and deduplicates
// concurrent computations for the same key with single-flight: when many
// campaign jobs or daemon requests ask for the same machine configuration
// at once, the pipeline runs exactly once and every caller shares the
// outcome.
//
// On disk, results and recorded timing traces share one content-addressed
// keyspace inside append-only segment files under <dir>/segments:
// "result/<fp>" holds the record JSON, "trace/<fp>" the trace stream.
// The legacy flat layout (<fp>.json / <fp>.trace, one file per
// fingerprint) auto-migrates into segments the first time a store opens
// over an old directory, and any flat files that appear later are still
// readable — lookups fall back to them after a segment miss. A background
// GC (StartGC) reclaims orphaned traces, enforces the optional disk-size
// bound, and compacts dead segments. With no directory configured at all,
// traces live in a bounded in-memory tier as before.
package store

import (
	"bytes"
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dramdig/internal/mapping"
	"dramdig/internal/metrics"
	"dramdig/internal/obs"
	"dramdig/internal/storage"
)

// Record is one cached result: the recovered mapping plus the run
// statistics worth keeping.
type Record struct {
	// Fingerprint is the machine-definition hash the record is keyed by.
	Fingerprint string `json:"fingerprint"`
	// MachineName labels the machine ("No.3", "gen-wide-MT41K256M8").
	MachineName string `json:"machine"`
	// Mapping is the recovered mapping, in the paper's JSON notation;
	// MappingFingerprint is its content hash.
	Mapping            *mapping.Mapping `json:"mapping"`
	MappingFingerprint string           `json:"mapping_fingerprint"`
	// Match records whether the mapping matched the simulator's ground
	// truth at compute time.
	Match bool `json:"match"`
	// SimSeconds and Measurements are the run's cost.
	SimSeconds   float64 `json:"sim_seconds"`
	Measurements uint64  `json:"measurements"`
	// CreatedUnix is the wall time the record was stored.
	CreatedUnix int64 `json:"created_unix"`
}

func (r *Record) validate() error {
	if !ValidFingerprint(r.Fingerprint) {
		return fmt.Errorf("store: bad fingerprint %q", r.Fingerprint)
	}
	if r.Mapping == nil {
		return fmt.Errorf("store: record %s has no mapping", r.Fingerprint)
	}
	return nil
}

// ValidFingerprint reports whether s looks like one of our hex digests —
// the daemon also uses this to reject path-traversal attempts before a
// fingerprint reaches the filesystem.
func ValidFingerprint(s string) bool {
	if len(s) != 64 {
		return false
	}
	for _, c := range s {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Blob-keyspace prefixes: results and traces share one content-addressed
// namespace inside the segment files.
const (
	resultPrefix = "result/"
	tracePrefix  = "trace/"
)

func resultKey(fp string) string { return resultPrefix + fp }
func traceKey(fp string) string  { return tracePrefix + fp }

// negCacheCap bounds the negative-lookup cache (fingerprints known to be
// absent from every tier, so repeated misses skip the legacy disk probe).
const negCacheCap = 4096

// Config tunes a store.
type Config struct {
	// Dir enables result persistence under this directory; empty keeps
	// results memory-only. Segments live under Dir/segments; legacy flat
	// <fp>.json files in Dir migrate into them on Open.
	Dir string
	// TraceDir is where recorded timing traces persist. Empty falls back
	// to Dir; with both empty, traces live in a bounded in-memory tier.
	// Legacy flat <fp>.trace files in TraceDir migrate on Open.
	TraceDir string
	// MaxEntries caps the in-memory LRU front (default 128). Persistence
	// is unaffected by eviction: evicted records reload from disk. The
	// same cap bounds the in-memory trace tier.
	MaxEntries int
	// MaxBytes bounds the disk tier (segment bytes); 0 means unbounded.
	// Past the bound, least-recently-used blobs are evicted and dead
	// segments compacted.
	MaxBytes int64
	// SegmentBytes overrides the target segment size (tests; 0 = default).
	SegmentBytes int64
	// GCGrace is how long a blob is exempt from orphan reclamation after
	// being written (or recovered from disk), so GC never races a trace
	// that is still being linked to its job. 0 means no grace.
	GCGrace time.Duration
}

// Stats are cumulative store counters.
type Stats struct {
	// Entries is the current in-memory count.
	Entries int `json:"entries"`
	// Hits counts memory or disk gets that found a record; Misses the
	// rest. Computes counts executed compute functions; single-flight
	// followers share the leader's compute and do not increment it.
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Computes uint64 `json:"computes"`
	// PersistErrors counts disk writes that failed after a successful
	// compute; the record is still served from memory (GetOrCompute
	// treats persistence as best-effort).
	PersistErrors uint64 `json:"persist_errors"`
	// NegativeLookups counts public Get calls that found nothing in any
	// tier — requests for fingerprints the store has never seen (distinct
	// from GetOrCompute misses, which turn into computes).
	NegativeLookups uint64 `json:"negative_lookups"`
	// NegativeCacheHits counts lookups answered by the bounded
	// negative-lookup cache without touching the disk.
	NegativeCacheHits uint64 `json:"negative_cache_hits"`
	// Disk-tier shape: live blobs, segment files, and their total bytes.
	DiskBlobs int   `json:"disk_blobs"`
	DiskBytes int64 `json:"disk_bytes"`
	Segments  int   `json:"segments"`
	// GC activity since open: completed sweeps, blobs/bytes reclaimed as
	// orphans, and blobs evicted to satisfy MaxBytes.
	GCRuns           uint64 `json:"gc_runs"`
	GCReclaimedBlobs uint64 `json:"gc_reclaimed_blobs"`
	GCReclaimedBytes uint64 `json:"gc_reclaimed_bytes"`
	GCEvicted        uint64 `json:"gc_evicted"`
}

// Store is safe for concurrent use.
type Store struct {
	mu     sync.Mutex
	dir    string
	cap    int
	ll     *list.List               // front = most recently used
	items  map[string]*list.Element // value: *Record
	flight map[string]*flightCall
	stats  Stats

	// Disk tier: one segment-backed blob keyspace for results and traces.
	// nil when neither Dir nor TraceDir is configured.
	blob           *storage.BlobStore
	persistResults bool // results persist only when Dir was set
	gcGrace        time.Duration

	// Bounded negative-lookup cache: blob keys proven absent everywhere.
	negCache      map[string]struct{}
	negCacheOrder []string

	// Disk-tier latency histograms; nil (no-op) until RegisterMetrics.
	diskRead  *metrics.Histogram
	diskWrite *metrics.Histogram

	// Trace tier: the shared blob keyspace, or the bounded memTraces map
	// (FIFO by memTraceOrder) when no directory is configured at all.
	traceDir      string
	memTraces     map[string][]byte
	memTraceAt    map[string]time.Time
	memTraceOrder []string
}

type flightCall struct {
	done chan struct{}
	rec  *Record
	err  error
}

// Open creates a store; with Config.Dir set, the directory is created and
// records persist across processes (loaded lazily on Get misses). Legacy
// flat-file layouts migrate into the segment keyspace here.
func Open(cfg Config) (*Store, error) {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 128
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	traceDir := cfg.TraceDir
	if traceDir == "" {
		traceDir = cfg.Dir
	}
	if traceDir != "" {
		if err := os.MkdirAll(traceDir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	s := &Store{
		dir:            cfg.Dir,
		cap:            cfg.MaxEntries,
		ll:             list.New(),
		items:          make(map[string]*list.Element),
		flight:         make(map[string]*flightCall),
		persistResults: cfg.Dir != "",
		gcGrace:        cfg.GCGrace,
		negCache:       make(map[string]struct{}),
		traceDir:       traceDir,
		memTraces:      make(map[string][]byte),
		memTraceAt:     make(map[string]time.Time),
	}
	root := cfg.Dir
	if root == "" {
		root = traceDir
	}
	if root != "" {
		bs, err := storage.OpenBlobStore(storage.Options{
			Dir:          filepath.Join(root, "segments"),
			SegmentBytes: cfg.SegmentBytes,
			MaxBytes:     cfg.MaxBytes,
		})
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		s.blob = bs
		if err := s.migrateFlat(); err != nil {
			bs.Close()
			return nil, err
		}
	}
	return s, nil
}

// migrateFlat imports legacy one-file-per-fingerprint layouts into the
// segment keyspace and removes the flat files. The blob store is fsynced
// before any flat file is deleted, so a crash at any point leaves every
// record readable from one layout or the other; a re-run is idempotent
// (later puts replace earlier ones).
func (s *Store) migrateFlat() error {
	type flatFile struct{ path, key string }
	var moved []flatFile
	scan := func(dir, suffix, prefix string) error {
		ents, err := os.ReadDir(dir)
		if err != nil {
			return fmt.Errorf("store: migrate scan: %w", err)
		}
		for _, e := range ents {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, suffix) {
				continue
			}
			fp := strings.TrimSuffix(name, suffix)
			if !ValidFingerprint(fp) {
				continue
			}
			path := filepath.Join(dir, name)
			data, err := os.ReadFile(path)
			if err != nil {
				return fmt.Errorf("store: migrate read: %w", err)
			}
			// Content moves byte-for-byte: a corrupt or miskeyed flat
			// file stays corrupt under the content address and is
			// rejected at read time, exactly as before.
			if err := s.blob.Put(prefix+fp, data); err != nil {
				return err
			}
			moved = append(moved, flatFile{path: path, key: prefix + fp})
		}
		return nil
	}
	if s.dir != "" {
		if err := scan(s.dir, ".json", resultPrefix); err != nil {
			return err
		}
	}
	if s.traceDir != "" {
		if err := scan(s.traceDir, ".trace", tracePrefix); err != nil {
			return err
		}
	}
	if len(moved) == 0 {
		return nil
	}
	if err := s.blob.Sync(); err != nil {
		return err
	}
	for _, f := range moved {
		if err := storage.RemoveDurable(f.path); err != nil {
			return err
		}
	}
	return nil
}

// Get returns the record for the fingerprint, consulting memory then
// disk. Returned records are shared — treat them as read-only. It is
// GetCtx with a background context (no tracing).
func (s *Store) Get(fp string) (*Record, bool, error) {
	return s.GetCtx(context.Background(), fp)
}

// GetCtx is Get under a context: when the context carries a tracer the
// lookup records a store.read span (child of the caller's span) with
// the fingerprint and hit/miss outcome.
func (s *Store) GetCtx(ctx context.Context, fp string) (*Record, bool, error) {
	_, sp := obs.Start(ctx, "store.read", obs.KV("fp", shortFP(fp)))
	s.mu.Lock()
	rec, err := s.getLocked(fp)
	if err != nil {
		s.mu.Unlock()
		sp.SetError(err)
		sp.End()
		return nil, false, err
	}
	if rec == nil {
		s.stats.NegativeLookups++
	}
	s.mu.Unlock()
	sp.SetAttr("hit", strconv.FormatBool(rec != nil))
	sp.End()
	return rec, rec != nil, nil
}

// shortFP truncates a fingerprint for span attributes — enough hex to
// grep the cache directory, without 64-char attribute values.
func shortFP(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	return fp
}

// Put inserts (or replaces) a record and persists it when the store has a
// directory.
func (s *Store) Put(rec *Record) error {
	if err := rec.validate(); err != nil {
		return err
	}
	if rec.CreatedUnix == 0 {
		rec.CreatedUnix = time.Now().Unix()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.putLocked(rec, true)
}

// GetOrCompute returns the cached record for the fingerprint or runs
// compute to produce it. Concurrent calls for the same fingerprint are
// deduplicated: one caller computes, the rest wait and share the result.
// Compute errors are returned to every waiter and are not cached. Disk
// persistence is best-effort here: if the write fails the record is still
// cached in memory and shared with every waiter, and the failure shows up
// in Stats.PersistErrors (use Put for write-or-error semantics).
func (s *Store) GetOrCompute(fp string, compute func() (*Record, error)) (*Record, error) {
	return s.GetOrComputeCtx(context.Background(), fp, compute)
}

// GetOrComputeCtx is GetOrCompute under a context: with a tracer in ctx
// the lookup records a store.read span (hit "true", "false", or
// "flight" when another caller's compute was joined) and a successful
// compute records a store.persist span around the cache write. The
// compute callback receives no context by design — callers close over
// theirs, and the pipeline's own phase spans parent correctly because
// compute runs on the calling goroutine.
func (s *Store) GetOrComputeCtx(ctx context.Context, fp string, compute func() (*Record, error)) (*Record, error) {
	_, rsp := obs.Start(ctx, "store.read", obs.KV("fp", shortFP(fp)))
	s.mu.Lock()
	rec, err := s.getLocked(fp)
	if err != nil {
		s.mu.Unlock()
		rsp.SetError(err)
		rsp.End()
		return nil, err
	}
	if rec != nil {
		s.mu.Unlock()
		rsp.SetAttr("hit", "true")
		rsp.End()
		return rec, nil
	}
	if c, ok := s.flight[fp]; ok {
		s.mu.Unlock()
		rsp.SetAttr("hit", "flight")
		rsp.End()
		<-c.done
		return c.rec, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	s.flight[fp] = c
	s.stats.Computes++
	s.mu.Unlock()
	rsp.SetAttr("hit", "false")
	rsp.End()

	rec, err = compute()
	if err == nil && rec != nil {
		if rec.Fingerprint == "" {
			rec.Fingerprint = fp
		}
		if rec.CreatedUnix == 0 {
			rec.CreatedUnix = time.Now().Unix()
		}
		if rec.Fingerprint != fp {
			rec, err = nil, fmt.Errorf("store: compute for %s returned record keyed %s", fp, rec.Fingerprint)
		} else if verr := rec.validate(); verr != nil {
			rec, err = nil, verr
		}
	} else if err == nil {
		err = fmt.Errorf("store: compute for %s returned neither record nor error", fp)
	}

	s.mu.Lock()
	delete(s.flight, fp)
	if err == nil {
		_, psp := obs.Start(ctx, "store.persist", obs.KV("fp", shortFP(fp)))
		perr := s.putLocked(rec, true)
		if perr != nil {
			s.stats.PersistErrors++
			// Persistence is best-effort here: the span carries the error,
			// the call does not.
			psp.SetError(perr)
		}
		psp.End()
	}
	s.mu.Unlock()

	c.rec, c.err = rec, err
	close(c.done)
	return rec, err
}

// StatsSnapshot returns the current counters.
func (s *Store) StatsSnapshot() Stats {
	s.mu.Lock()
	st := s.stats
	st.Entries = s.ll.Len()
	s.mu.Unlock()
	if s.blob != nil {
		st.DiskBlobs = s.blob.Len()
		st.DiskBytes = s.blob.DiskBytes()
		st.Segments = s.blob.Segments()
		st.GCEvicted = s.blob.Stats().Evicted
	}
	return st
}

// RegisterMetrics wires the store into a metrics registry: cache-outcome
// counters read live from StatsSnapshot, the current LRU population, the
// disk tier's size and GC activity, and disk-tier read/write latency
// histograms. A nil registry is a no-op.
func (s *Store) RegisterMetrics(r *metrics.Registry) {
	if r == nil {
		return
	}
	r.CounterFunc("dramdig_store_hits_total", "Lookups served from memory or disk.", nil,
		func() float64 { return float64(s.StatsSnapshot().Hits) })
	r.CounterFunc("dramdig_store_misses_total", "Lookups that found no record.", nil,
		func() float64 { return float64(s.StatsSnapshot().Misses) })
	r.CounterFunc("dramdig_store_computes_total", "Pipeline computes executed (single-flight leaders).", nil,
		func() float64 { return float64(s.StatsSnapshot().Computes) })
	r.CounterFunc("dramdig_store_persist_errors_total", "Best-effort disk writes that failed after a compute.", nil,
		func() float64 { return float64(s.StatsSnapshot().PersistErrors) })
	r.CounterFunc("dramdig_store_negative_lookups_total", "Get calls for fingerprints the store has never seen.", nil,
		func() float64 { return float64(s.StatsSnapshot().NegativeLookups) })
	r.CounterFunc("dramdig_store_negative_cache_hits_total", "Misses answered by the negative-lookup cache without touching disk.", nil,
		func() float64 { return float64(s.StatsSnapshot().NegativeCacheHits) })
	r.GaugeFunc("dramdig_store_entries", "Records in the in-memory LRU tier.", nil,
		func() float64 { return float64(s.Len()) })
	r.GaugeFunc("dramdig_store_disk_bytes", "Total bytes in the segment files of the disk tier.", nil,
		func() float64 { return float64(s.StatsSnapshot().DiskBytes) })
	r.GaugeFunc("dramdig_store_disk_blobs", "Live blobs (results + traces) in the disk tier.", nil,
		func() float64 { return float64(s.StatsSnapshot().DiskBlobs) })
	r.GaugeFunc("dramdig_store_segments", "Segment files in the disk tier.", nil,
		func() float64 { return float64(s.StatsSnapshot().Segments) })
	r.CounterFunc("dramdig_store_gc_runs_total", "Completed garbage-collection sweeps.", nil,
		func() float64 { return float64(s.StatsSnapshot().GCRuns) })
	r.CounterFunc("dramdig_store_gc_reclaimed_blobs_total", "Orphaned blobs reclaimed by GC.", nil,
		func() float64 { return float64(s.StatsSnapshot().GCReclaimedBlobs) })
	r.CounterFunc("dramdig_store_gc_reclaimed_bytes_total", "Payload bytes of orphaned blobs reclaimed by GC.", nil,
		func() float64 { return float64(s.StatsSnapshot().GCReclaimedBytes) })
	r.CounterFunc("dramdig_store_gc_evicted_total", "Blobs evicted to keep the disk tier under -store-max-bytes.", nil,
		func() float64 { return float64(s.StatsSnapshot().GCEvicted) })
	diskBuckets := metrics.ExpBuckets(10e-6, 4, 10) // 10µs .. ~2.6s
	s.mu.Lock()
	s.diskRead = r.Histogram("dramdig_store_disk_read_seconds",
		"Disk-tier record read latency.", diskBuckets, nil)
	s.diskWrite = r.Histogram("dramdig_store_disk_write_seconds",
		"Disk-tier record write latency (segment append).", diskBuckets, nil)
	s.mu.Unlock()
}

// Len returns the in-memory entry count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Close releases the disk tier (fsyncing the active segment). The store
// must not be used afterwards. Memory-only stores need no Close.
func (s *Store) Close() error {
	if s.blob != nil {
		return s.blob.Close()
	}
	return nil
}

// --- negative-lookup cache ---------------------------------------------

// negCacheHasLocked reports whether key was already proven absent.
func (s *Store) negCacheHasLocked(key string) bool {
	_, ok := s.negCache[key]
	if ok {
		s.stats.NegativeCacheHits++
	}
	return ok
}

func (s *Store) negCacheAddLocked(key string) {
	if _, ok := s.negCache[key]; ok {
		return
	}
	s.negCache[key] = struct{}{}
	s.negCacheOrder = append(s.negCacheOrder, key)
	for len(s.negCacheOrder) > negCacheCap {
		evict := s.negCacheOrder[0]
		s.negCacheOrder = s.negCacheOrder[1:]
		delete(s.negCache, evict)
	}
}

func (s *Store) negCacheDropLocked(key string) {
	delete(s.negCache, key)
}

// --- result tier -------------------------------------------------------

// getLocked consults the LRU, then the segment keyspace, then the legacy
// flat layout, promoting what it finds.
func (s *Store) getLocked(fp string) (*Record, error) {
	if el, ok := s.items[fp]; ok {
		s.ll.MoveToFront(el)
		s.stats.Hits++
		return el.Value.(*Record), nil
	}
	if s.dir != "" && ValidFingerprint(fp) {
		key := resultKey(fp)
		readStart := time.Now()
		data, ok, err := s.blob.Get(key)
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		if !ok && !s.negCacheHasLocked(key) {
			// Legacy flat layout: a <fp>.json dropped into the directory
			// after Open is still honored. The negative cache keeps
			// repeated misses off the disk.
			data, err = os.ReadFile(s.flatPath(fp))
			if os.IsNotExist(err) {
				data, err = nil, nil
				s.negCacheAddLocked(key)
			} else if err != nil {
				return nil, fmt.Errorf("store: %w", err)
			} else {
				ok = true
			}
		}
		if ok {
			// Only successful reads are observed: index misses return in
			// microseconds and would skew the latency distribution toward
			// the low buckets.
			s.diskRead.Observe(time.Since(readStart).Seconds())
			var rec Record
			if uerr := json.Unmarshal(data, &rec); uerr != nil {
				return nil, fmt.Errorf("store: corrupt record %s: %w", fp, uerr)
			}
			if rec.Fingerprint != fp {
				return nil, fmt.Errorf("store: record file %s is keyed %s inside", fp, rec.Fingerprint)
			}
			if verr := rec.validate(); verr != nil {
				return nil, fmt.Errorf("store: corrupt record %s: %w", fp, verr)
			}
			s.stats.Hits++
			// Promote to memory (and into segments, when the hit came
			// from a legacy flat file).
			if perr := s.putLocked(&rec, true); perr != nil {
				return nil, perr
			}
			return &rec, nil
		}
	}
	s.stats.Misses++
	return nil, nil
}

// putLocked inserts into the LRU first — the memory tier stays coherent
// even when the disk tier misbehaves — then persists into the segment
// keyspace. Records are small (~1 KiB of JSON), so holding the mutex
// across the append is a deliberate simplicity tradeoff; the expensive
// pipeline computes already run outside the lock.
func (s *Store) putLocked(rec *Record, persist bool) error {
	if el, ok := s.items[rec.Fingerprint]; ok {
		el.Value = rec
		s.ll.MoveToFront(el)
	} else {
		s.items[rec.Fingerprint] = s.ll.PushFront(rec)
		for s.ll.Len() > s.cap {
			oldest := s.ll.Back()
			s.ll.Remove(oldest)
			delete(s.items, oldest.Value.(*Record).Fingerprint)
		}
	}
	if persist && s.persistResults {
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return fmt.Errorf("store: encode %s: %w", rec.Fingerprint, err)
		}
		key := resultKey(rec.Fingerprint)
		writeStart := time.Now()
		if err := s.blob.Put(key, data); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		s.diskWrite.Observe(time.Since(writeStart).Seconds())
		s.negCacheDropLocked(key)
	}
	return nil
}

// flatPath is where the legacy one-file-per-record layout kept fp.
func (s *Store) flatPath(fp string) string {
	return filepath.Join(s.dir, fp+".json")
}

// --- iteration ---------------------------------------------------------

// Iterate calls fn for every live blob whose key starts with prefix, in
// key order. Keys are "result/<fp>" and "trace/<fp>". For memory-only
// stores the in-memory tiers are enumerated instead (result sizes are
// reported as 0 — records are not serialized to measure them). fn must
// not call back into the store.
func (s *Store) Iterate(prefix string, fn func(key string, size int64) error) error {
	if s.blob != nil {
		return s.blob.Iterate(prefix, func(in storage.BlobInfo) error {
			return fn(in.Key, in.Size)
		})
	}
	s.mu.Lock()
	type kv struct {
		key  string
		size int64
	}
	var infos []kv
	for fp := range s.items {
		if k := resultKey(fp); strings.HasPrefix(k, prefix) {
			infos = append(infos, kv{key: k})
		}
	}
	for fp, data := range s.memTraces {
		if k := traceKey(fp); strings.HasPrefix(k, prefix) {
			infos = append(infos, kv{key: k, size: int64(len(data))})
		}
	}
	s.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].key < infos[j].key })
	for _, in := range infos {
		if err := fn(in.key, in.size); err != nil {
			return err
		}
	}
	return nil
}

// --- garbage collection ------------------------------------------------

// Sweep runs one GC pass: traces whose fingerprint the referenced
// callback does not vouch for are reclaimed (once past Config.GCGrace),
// the disk bound is enforced, and dead segments are compacted. Results
// are never orphan-reclaimed — only the size bound evicts them. A nil
// referenced skips orphan reclamation.
func (s *Store) Sweep(ctx context.Context, referenced func() map[string]bool) (storage.SweepResult, error) {
	var refs map[string]bool
	if referenced != nil {
		refs = referenced()
	}
	if s.blob == nil {
		return s.sweepMem(ctx, referenced != nil, refs)
	}
	var reclaim func(key string, age time.Duration) bool
	if referenced != nil {
		reclaim = func(key string, age time.Duration) bool {
			fp, ok := strings.CutPrefix(key, tracePrefix)
			if !ok {
				return false
			}
			return age >= s.gcGrace && !refs[fp]
		}
	}
	res, err := s.blob.Sweep(ctx, reclaim)
	s.mu.Lock()
	s.stats.GCRuns++
	s.stats.GCReclaimedBlobs += uint64(res.ReclaimedBlobs)
	s.stats.GCReclaimedBytes += uint64(res.ReclaimedBytes)
	s.mu.Unlock()
	return res, err
}

// sweepMem reclaims orphaned traces from the in-memory tier.
func (s *Store) sweepMem(ctx context.Context, haveRefs bool, refs map[string]bool) (storage.SweepResult, error) {
	_, sp := obs.Start(ctx, "storage.gc")
	defer sp.End()
	var res storage.SweepResult
	s.mu.Lock()
	defer s.mu.Unlock()
	if haveRefs {
		now := time.Now()
		kept := s.memTraceOrder[:0]
		for _, fp := range s.memTraceOrder {
			data, ok := s.memTraces[fp]
			if ok && !refs[fp] && now.Sub(s.memTraceAt[fp]) >= s.gcGrace {
				delete(s.memTraces, fp)
				delete(s.memTraceAt, fp)
				res.ReclaimedBlobs++
				res.ReclaimedBytes += int64(len(data))
				continue
			}
			kept = append(kept, fp)
		}
		s.memTraceOrder = kept
	}
	s.stats.GCRuns++
	s.stats.GCReclaimedBlobs += uint64(res.ReclaimedBlobs)
	s.stats.GCReclaimedBytes += uint64(res.ReclaimedBytes)
	sp.SetAttrInt("reclaimed_blobs", int64(res.ReclaimedBlobs))
	sp.SetAttrInt("reclaimed_bytes", res.ReclaimedBytes)
	return res, nil
}

// StartGC launches a background goroutine sweeping every interval until
// ctx is canceled. referenced returns the set of machine fingerprints
// whose artifacts must survive (typically: every job the daemon's queue
// still retains); it is called once per sweep.
func (s *Store) StartGC(ctx context.Context, interval time.Duration, referenced func() map[string]bool) {
	if interval <= 0 {
		interval = time.Minute
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				s.Sweep(ctx, referenced) // errors surface via gc span + counters
			}
		}
	}()
}

// --- trace tier --------------------------------------------------------

// TracePath returns where a fingerprint's trace persisted under the
// legacy flat layout, or "" now that traces live inside the shared
// segment keyspace (use GetTrace/StatTrace for access).
func (s *Store) TracePath(fp string) string {
	if s.traceDir == "" {
		return ""
	}
	p := filepath.Join(s.traceDir, fp+".trace")
	if _, err := os.Stat(p); err == nil {
		return p
	}
	return ""
}

// TraceWriter returns a sink that stores the bytes written to it as the
// fingerprint's trace when closed. The trace appears under its content
// address only on Close — a crashed recording never leaves a half trace
// visible, on disk or in memory.
func (s *Store) TraceWriter(fp string) (io.WriteCloser, error) {
	if !ValidFingerprint(fp) {
		return nil, fmt.Errorf("store: bad fingerprint %q", fp)
	}
	return &traceWriter{s: s, fp: fp}, nil
}

// PutTrace stores an already-encoded trace for the fingerprint.
func (s *Store) PutTrace(fp string, data []byte) error {
	w, err := s.TraceWriter(fp)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// putTraceBytes commits a completed trace into the blob keyspace or the
// bounded in-memory tier.
func (s *Store) putTraceBytes(fp string, data []byte) error {
	if s.blob == nil {
		s.putMemTrace(fp, data)
		return nil
	}
	key := traceKey(fp)
	s.mu.Lock()
	writeStart := time.Now()
	err := s.blob.Put(key, data)
	if err == nil {
		s.diskWrite.Observe(time.Since(writeStart).Seconds())
		s.negCacheDropLocked(key)
	}
	s.mu.Unlock()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// GetTrace returns the stored trace bytes for the fingerprint.
func (s *Store) GetTrace(fp string) ([]byte, bool, error) {
	if !ValidFingerprint(fp) {
		return nil, false, fmt.Errorf("store: bad fingerprint %q", fp)
	}
	if s.blob == nil {
		s.mu.Lock()
		data, ok := s.memTraces[fp]
		s.mu.Unlock()
		return data, ok, nil
	}
	key := traceKey(fp)
	data, ok, err := s.blob.Get(key)
	if err != nil {
		return nil, false, fmt.Errorf("store: %w", err)
	}
	if ok {
		return data, true, nil
	}
	s.mu.Lock()
	skip := s.negCacheHasLocked(key)
	s.mu.Unlock()
	if skip {
		return nil, false, nil
	}
	// Legacy flat layout fallback.
	data, err = os.ReadFile(filepath.Join(s.traceDir, fp+".trace"))
	if os.IsNotExist(err) {
		s.mu.Lock()
		s.negCacheAddLocked(key)
		s.mu.Unlock()
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("store: %w", err)
	}
	return data, true, nil
}

// StatTrace reports whether a trace exists for the fingerprint and its
// size in bytes.
func (s *Store) StatTrace(fp string) (int64, bool) {
	if !ValidFingerprint(fp) {
		return 0, false
	}
	if s.blob == nil {
		s.mu.Lock()
		data, ok := s.memTraces[fp]
		s.mu.Unlock()
		return int64(len(data)), ok
	}
	if size, ok := s.blob.Stat(traceKey(fp)); ok {
		return size, true
	}
	fi, err := os.Stat(filepath.Join(s.traceDir, fp+".trace"))
	if err != nil {
		return 0, false
	}
	return fi.Size(), true
}

// putMemTrace inserts into the bounded in-memory tier, evicting the
// oldest distinct fingerprints past the cap.
func (s *Store) putMemTrace(fp string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.memTraces[fp]; !ok {
		s.memTraceOrder = append(s.memTraceOrder, fp)
		for len(s.memTraceOrder) > s.cap {
			evict := s.memTraceOrder[0]
			s.memTraceOrder = s.memTraceOrder[1:]
			delete(s.memTraces, evict)
			delete(s.memTraceAt, evict)
		}
	}
	s.memTraces[fp] = data
	s.memTraceAt[fp] = time.Now()
}

// traceWriter buffers the trace and commits it under the content address
// on Close.
type traceWriter struct {
	s      *Store
	fp     string
	buf    bytes.Buffer
	closed bool
}

func (w *traceWriter) Write(p []byte) (int, error) { return w.buf.Write(p) }

func (w *traceWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	return w.s.putTraceBytes(w.fp, w.buf.Bytes())
}
