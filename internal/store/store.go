// Package store is a content-addressed cache of reverse-engineering
// results, keyed by machine-definition fingerprints (see
// machine.Definition.Fingerprint). It layers an in-memory LRU front over
// optional JSON persistence (one file per fingerprint, built on the
// mapping wire format of internal/mapping), and deduplicates concurrent
// computations for the same key with single-flight: when many campaign
// jobs or daemon requests ask for the same machine configuration at once,
// the pipeline runs exactly once and every caller shares the outcome.
//
// Next to each result the store can persist the run's recorded timing
// trace (internal/trace binary streams), content-addressed by the same
// machine fingerprint: <fp>.trace beside <fp>.json on disk, or a bounded
// in-memory tier when no trace directory is configured.
package store

import (
	"bytes"
	"container/list"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"dramdig/internal/mapping"
	"dramdig/internal/metrics"
	"dramdig/internal/obs"
)

// Record is one cached result: the recovered mapping plus the run
// statistics worth keeping.
type Record struct {
	// Fingerprint is the machine-definition hash the record is keyed by.
	Fingerprint string `json:"fingerprint"`
	// MachineName labels the machine ("No.3", "gen-wide-MT41K256M8").
	MachineName string `json:"machine"`
	// Mapping is the recovered mapping, in the paper's JSON notation;
	// MappingFingerprint is its content hash.
	Mapping            *mapping.Mapping `json:"mapping"`
	MappingFingerprint string           `json:"mapping_fingerprint"`
	// Match records whether the mapping matched the simulator's ground
	// truth at compute time.
	Match bool `json:"match"`
	// SimSeconds and Measurements are the run's cost.
	SimSeconds   float64 `json:"sim_seconds"`
	Measurements uint64  `json:"measurements"`
	// CreatedUnix is the wall time the record was stored.
	CreatedUnix int64 `json:"created_unix"`
}

func (r *Record) validate() error {
	if !ValidFingerprint(r.Fingerprint) {
		return fmt.Errorf("store: bad fingerprint %q", r.Fingerprint)
	}
	if r.Mapping == nil {
		return fmt.Errorf("store: record %s has no mapping", r.Fingerprint)
	}
	return nil
}

// ValidFingerprint reports whether s looks like one of our hex digests —
// the daemon also uses this to reject path-traversal attempts before a
// fingerprint reaches the filesystem.
func ValidFingerprint(s string) bool {
	if len(s) != 64 {
		return false
	}
	for _, c := range s {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Config tunes a store.
type Config struct {
	// Dir enables JSON persistence under this directory; empty keeps the
	// store memory-only.
	Dir string
	// TraceDir is where recorded timing traces persist (one
	// <fingerprint>.trace per machine). Empty falls back to Dir; with
	// both empty, traces live in a bounded in-memory tier.
	TraceDir string
	// MaxEntries caps the in-memory LRU front (default 128). Persistence
	// is unaffected by eviction: evicted records reload from disk. The
	// same cap bounds the in-memory trace tier.
	MaxEntries int
}

// Stats are cumulative store counters.
type Stats struct {
	// Entries is the current in-memory count.
	Entries int `json:"entries"`
	// Hits counts memory or disk gets that found a record; Misses the
	// rest. Computes counts executed compute functions; single-flight
	// followers share the leader's compute and do not increment it.
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Computes uint64 `json:"computes"`
	// PersistErrors counts disk writes that failed after a successful
	// compute; the record is still served from memory (GetOrCompute
	// treats persistence as best-effort).
	PersistErrors uint64 `json:"persist_errors"`
	// NegativeLookups counts public Get calls that found nothing in any
	// tier — requests for fingerprints the store has never seen (distinct
	// from GetOrCompute misses, which turn into computes).
	NegativeLookups uint64 `json:"negative_lookups"`
}

// Store is safe for concurrent use.
type Store struct {
	mu     sync.Mutex
	dir    string
	cap    int
	ll     *list.List               // front = most recently used
	items  map[string]*list.Element // value: *Record
	flight map[string]*flightCall
	stats  Stats

	// Disk-tier latency histograms; nil (no-op) until RegisterMetrics.
	diskRead  *metrics.Histogram
	diskWrite *metrics.Histogram

	// Trace tier: disk under traceDir, or the bounded memTraces map
	// (FIFO by memTraceOrder) when no directory is configured.
	traceDir      string
	memTraces     map[string][]byte
	memTraceOrder []string
}

type flightCall struct {
	done chan struct{}
	rec  *Record
	err  error
}

// Open creates a store; with Config.Dir set, the directory is created and
// records persist across processes (loaded lazily on Get misses).
func Open(cfg Config) (*Store, error) {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 128
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	traceDir := cfg.TraceDir
	if traceDir == "" {
		traceDir = cfg.Dir
	}
	if traceDir != "" {
		if err := os.MkdirAll(traceDir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return &Store{
		dir:       cfg.Dir,
		cap:       cfg.MaxEntries,
		ll:        list.New(),
		items:     make(map[string]*list.Element),
		flight:    make(map[string]*flightCall),
		traceDir:  traceDir,
		memTraces: make(map[string][]byte),
	}, nil
}

// Get returns the record for the fingerprint, consulting memory then
// disk. Returned records are shared — treat them as read-only. It is
// GetCtx with a background context (no tracing).
func (s *Store) Get(fp string) (*Record, bool, error) {
	return s.GetCtx(context.Background(), fp)
}

// GetCtx is Get under a context: when the context carries a tracer the
// lookup records a store.read span (child of the caller's span) with
// the fingerprint and hit/miss outcome.
func (s *Store) GetCtx(ctx context.Context, fp string) (*Record, bool, error) {
	_, sp := obs.Start(ctx, "store.read", obs.KV("fp", shortFP(fp)))
	s.mu.Lock()
	rec, err := s.getLocked(fp)
	if err != nil {
		s.mu.Unlock()
		sp.SetError(err)
		sp.End()
		return nil, false, err
	}
	if rec == nil {
		s.stats.NegativeLookups++
	}
	s.mu.Unlock()
	sp.SetAttr("hit", strconv.FormatBool(rec != nil))
	sp.End()
	return rec, rec != nil, nil
}

// shortFP truncates a fingerprint for span attributes — enough hex to
// grep the cache directory, without 64-char attribute values.
func shortFP(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	return fp
}

// Put inserts (or replaces) a record and persists it when the store has a
// directory.
func (s *Store) Put(rec *Record) error {
	if err := rec.validate(); err != nil {
		return err
	}
	if rec.CreatedUnix == 0 {
		rec.CreatedUnix = time.Now().Unix()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.putLocked(rec, true)
}

// GetOrCompute returns the cached record for the fingerprint or runs
// compute to produce it. Concurrent calls for the same fingerprint are
// deduplicated: one caller computes, the rest wait and share the result.
// Compute errors are returned to every waiter and are not cached. Disk
// persistence is best-effort here: if the write fails the record is still
// cached in memory and shared with every waiter, and the failure shows up
// in Stats.PersistErrors (use Put for write-or-error semantics).
func (s *Store) GetOrCompute(fp string, compute func() (*Record, error)) (*Record, error) {
	return s.GetOrComputeCtx(context.Background(), fp, compute)
}

// GetOrComputeCtx is GetOrCompute under a context: with a tracer in ctx
// the lookup records a store.read span (hit "true", "false", or
// "flight" when another caller's compute was joined) and a successful
// compute records a store.persist span around the cache write. The
// compute callback receives no context by design — callers close over
// theirs, and the pipeline's own phase spans parent correctly because
// compute runs on the calling goroutine.
func (s *Store) GetOrComputeCtx(ctx context.Context, fp string, compute func() (*Record, error)) (*Record, error) {
	_, rsp := obs.Start(ctx, "store.read", obs.KV("fp", shortFP(fp)))
	s.mu.Lock()
	rec, err := s.getLocked(fp)
	if err != nil {
		s.mu.Unlock()
		rsp.SetError(err)
		rsp.End()
		return nil, err
	}
	if rec != nil {
		s.mu.Unlock()
		rsp.SetAttr("hit", "true")
		rsp.End()
		return rec, nil
	}
	if c, ok := s.flight[fp]; ok {
		s.mu.Unlock()
		rsp.SetAttr("hit", "flight")
		rsp.End()
		<-c.done
		return c.rec, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	s.flight[fp] = c
	s.stats.Computes++
	s.mu.Unlock()
	rsp.SetAttr("hit", "false")
	rsp.End()

	rec, err = compute()
	if err == nil && rec != nil {
		if rec.Fingerprint == "" {
			rec.Fingerprint = fp
		}
		if rec.CreatedUnix == 0 {
			rec.CreatedUnix = time.Now().Unix()
		}
		if rec.Fingerprint != fp {
			rec, err = nil, fmt.Errorf("store: compute for %s returned record keyed %s", fp, rec.Fingerprint)
		} else if verr := rec.validate(); verr != nil {
			rec, err = nil, verr
		}
	} else if err == nil {
		err = fmt.Errorf("store: compute for %s returned neither record nor error", fp)
	}

	s.mu.Lock()
	delete(s.flight, fp)
	if err == nil {
		_, psp := obs.Start(ctx, "store.persist", obs.KV("fp", shortFP(fp)))
		perr := s.putLocked(rec, true)
		if perr != nil {
			s.stats.PersistErrors++
			// Persistence is best-effort here: the span carries the error,
			// the call does not.
			psp.SetError(perr)
		}
		psp.End()
	}
	s.mu.Unlock()

	c.rec, c.err = rec, err
	close(c.done)
	return rec, err
}

// StatsSnapshot returns the current counters.
func (s *Store) StatsSnapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = s.ll.Len()
	return st
}

// RegisterMetrics wires the store into a metrics registry: cache-outcome
// counters read live from StatsSnapshot, the current LRU population, and
// disk-tier read/write latency histograms. A nil registry is a no-op.
func (s *Store) RegisterMetrics(r *metrics.Registry) {
	if r == nil {
		return
	}
	r.CounterFunc("dramdig_store_hits_total", "Lookups served from memory or disk.", nil,
		func() float64 { return float64(s.StatsSnapshot().Hits) })
	r.CounterFunc("dramdig_store_misses_total", "Lookups that found no record.", nil,
		func() float64 { return float64(s.StatsSnapshot().Misses) })
	r.CounterFunc("dramdig_store_computes_total", "Pipeline computes executed (single-flight leaders).", nil,
		func() float64 { return float64(s.StatsSnapshot().Computes) })
	r.CounterFunc("dramdig_store_persist_errors_total", "Best-effort disk writes that failed after a compute.", nil,
		func() float64 { return float64(s.StatsSnapshot().PersistErrors) })
	r.CounterFunc("dramdig_store_negative_lookups_total", "Get calls for fingerprints the store has never seen.", nil,
		func() float64 { return float64(s.StatsSnapshot().NegativeLookups) })
	r.GaugeFunc("dramdig_store_entries", "Records in the in-memory LRU tier.", nil,
		func() float64 { return float64(s.Len()) })
	diskBuckets := metrics.ExpBuckets(10e-6, 4, 10) // 10µs .. ~2.6s
	s.mu.Lock()
	s.diskRead = r.Histogram("dramdig_store_disk_read_seconds",
		"Disk-tier record read latency.", diskBuckets, nil)
	s.diskWrite = r.Histogram("dramdig_store_disk_write_seconds",
		"Disk-tier record write latency (temp file + rename).", diskBuckets, nil)
	s.mu.Unlock()
}

// Len returns the in-memory entry count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// getLocked consults the LRU then the disk tier, promoting what it finds.
func (s *Store) getLocked(fp string) (*Record, error) {
	if el, ok := s.items[fp]; ok {
		s.ll.MoveToFront(el)
		s.stats.Hits++
		return el.Value.(*Record), nil
	}
	if s.dir != "" && ValidFingerprint(fp) {
		readStart := time.Now()
		data, err := os.ReadFile(s.path(fp))
		if err == nil {
			// Only successful reads are observed: ENOENT misses return in
			// microseconds and would skew the latency distribution toward
			// the low buckets.
			s.diskRead.Observe(time.Since(readStart).Seconds())
			var rec Record
			if uerr := json.Unmarshal(data, &rec); uerr != nil {
				return nil, fmt.Errorf("store: corrupt record %s: %w", fp, uerr)
			}
			if rec.Fingerprint != fp {
				return nil, fmt.Errorf("store: record file %s is keyed %s inside", fp, rec.Fingerprint)
			}
			if verr := rec.validate(); verr != nil {
				return nil, fmt.Errorf("store: corrupt record %s: %w", fp, verr)
			}
			s.stats.Hits++
			// Promote to memory without rewriting the file.
			if perr := s.putLocked(&rec, false); perr != nil {
				return nil, perr
			}
			return &rec, nil
		}
		if !os.IsNotExist(err) {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	s.stats.Misses++
	return nil, nil
}

// putLocked inserts into the LRU first — the memory tier stays coherent
// even when the disk tier misbehaves — then persists. Records are small
// (~1 KiB of JSON), so holding the mutex across the write is a deliberate
// simplicity tradeoff; the expensive pipeline computes already run
// outside the lock.
func (s *Store) putLocked(rec *Record, persist bool) error {
	if el, ok := s.items[rec.Fingerprint]; ok {
		el.Value = rec
		s.ll.MoveToFront(el)
	} else {
		s.items[rec.Fingerprint] = s.ll.PushFront(rec)
		for s.ll.Len() > s.cap {
			oldest := s.ll.Back()
			s.ll.Remove(oldest)
			delete(s.items, oldest.Value.(*Record).Fingerprint)
		}
	}
	if persist && s.dir != "" {
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return fmt.Errorf("store: encode %s: %w", rec.Fingerprint, err)
		}
		path := s.path(rec.Fingerprint)
		tmp := path + ".tmp"
		writeStart := time.Now()
		if err := os.WriteFile(tmp, data, 0o644); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if err := os.Rename(tmp, path); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		s.diskWrite.Observe(time.Since(writeStart).Seconds())
	}
	return nil
}

func (s *Store) path(fp string) string {
	return filepath.Join(s.dir, fp+".json")
}

// --- trace tier --------------------------------------------------------

// TracePath returns where a fingerprint's trace persists ("" when the
// store keeps traces in memory).
func (s *Store) TracePath(fp string) string {
	if s.traceDir == "" {
		return ""
	}
	return filepath.Join(s.traceDir, fp+".trace")
}

// TraceWriter returns a sink that stores the bytes written to it as the
// fingerprint's trace when closed. On disk the write is atomic (temp
// file + rename), so a crashed recording never leaves a half trace under
// the content address; in memory the trace appears only on Close.
func (s *Store) TraceWriter(fp string) (io.WriteCloser, error) {
	if !ValidFingerprint(fp) {
		return nil, fmt.Errorf("store: bad fingerprint %q", fp)
	}
	if s.traceDir == "" {
		return &memTraceWriter{s: s, fp: fp}, nil
	}
	path := s.TracePath(fp)
	f, err := os.CreateTemp(s.traceDir, fp+".tmp*")
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// CreateTemp defaults to 0600; match the record files' permissions.
	if err := f.Chmod(0o644); err != nil {
		f.Close()
		os.Remove(f.Name())
		return nil, fmt.Errorf("store: %w", err)
	}
	return &fileTraceWriter{f: f, path: path}, nil
}

// PutTrace stores an already-encoded trace for the fingerprint.
func (s *Store) PutTrace(fp string, data []byte) error {
	w, err := s.TraceWriter(fp)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// GetTrace returns the stored trace bytes for the fingerprint.
func (s *Store) GetTrace(fp string) ([]byte, bool, error) {
	if !ValidFingerprint(fp) {
		return nil, false, fmt.Errorf("store: bad fingerprint %q", fp)
	}
	if s.traceDir == "" {
		s.mu.Lock()
		data, ok := s.memTraces[fp]
		s.mu.Unlock()
		return data, ok, nil
	}
	data, err := os.ReadFile(s.TracePath(fp))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("store: %w", err)
	}
	return data, true, nil
}

// StatTrace reports whether a trace exists for the fingerprint and its
// size in bytes.
func (s *Store) StatTrace(fp string) (int64, bool) {
	if !ValidFingerprint(fp) {
		return 0, false
	}
	if s.traceDir == "" {
		s.mu.Lock()
		data, ok := s.memTraces[fp]
		s.mu.Unlock()
		return int64(len(data)), ok
	}
	fi, err := os.Stat(s.TracePath(fp))
	if err != nil {
		return 0, false
	}
	return fi.Size(), true
}

// putMemTrace inserts into the bounded in-memory tier, evicting the
// oldest distinct fingerprints past the cap.
func (s *Store) putMemTrace(fp string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.memTraces[fp]; !ok {
		s.memTraceOrder = append(s.memTraceOrder, fp)
		for len(s.memTraceOrder) > s.cap {
			evict := s.memTraceOrder[0]
			s.memTraceOrder = s.memTraceOrder[1:]
			delete(s.memTraces, evict)
		}
	}
	s.memTraces[fp] = data
}

type memTraceWriter struct {
	s      *Store
	fp     string
	buf    bytes.Buffer
	closed bool
}

func (w *memTraceWriter) Write(p []byte) (int, error) { return w.buf.Write(p) }

func (w *memTraceWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	w.s.putMemTrace(w.fp, w.buf.Bytes())
	return nil
}

type fileTraceWriter struct {
	f      *os.File
	path   string
	closed bool
}

func (w *fileTraceWriter) Write(p []byte) (int, error) { return w.f.Write(p) }

func (w *fileTraceWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	tmp := w.f.Name()
	if err := w.f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, w.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	return nil
}
