// Package store is a content-addressed cache of reverse-engineering
// results, keyed by machine-definition fingerprints (see
// machine.Definition.Fingerprint). It layers an in-memory LRU front over
// optional JSON persistence (one file per fingerprint, built on the
// mapping wire format of internal/mapping), and deduplicates concurrent
// computations for the same key with single-flight: when many campaign
// jobs or daemon requests ask for the same machine configuration at once,
// the pipeline runs exactly once and every caller shares the outcome.
package store

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"dramdig/internal/mapping"
)

// Record is one cached result: the recovered mapping plus the run
// statistics worth keeping.
type Record struct {
	// Fingerprint is the machine-definition hash the record is keyed by.
	Fingerprint string `json:"fingerprint"`
	// MachineName labels the machine ("No.3", "gen-wide-MT41K256M8").
	MachineName string `json:"machine"`
	// Mapping is the recovered mapping, in the paper's JSON notation;
	// MappingFingerprint is its content hash.
	Mapping            *mapping.Mapping `json:"mapping"`
	MappingFingerprint string           `json:"mapping_fingerprint"`
	// Match records whether the mapping matched the simulator's ground
	// truth at compute time.
	Match bool `json:"match"`
	// SimSeconds and Measurements are the run's cost.
	SimSeconds   float64 `json:"sim_seconds"`
	Measurements uint64  `json:"measurements"`
	// CreatedUnix is the wall time the record was stored.
	CreatedUnix int64 `json:"created_unix"`
}

func (r *Record) validate() error {
	if !ValidFingerprint(r.Fingerprint) {
		return fmt.Errorf("store: bad fingerprint %q", r.Fingerprint)
	}
	if r.Mapping == nil {
		return fmt.Errorf("store: record %s has no mapping", r.Fingerprint)
	}
	return nil
}

// ValidFingerprint reports whether s looks like one of our hex digests —
// the daemon also uses this to reject path-traversal attempts before a
// fingerprint reaches the filesystem.
func ValidFingerprint(s string) bool {
	if len(s) != 64 {
		return false
	}
	for _, c := range s {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Config tunes a store.
type Config struct {
	// Dir enables JSON persistence under this directory; empty keeps the
	// store memory-only.
	Dir string
	// MaxEntries caps the in-memory LRU front (default 128). Persistence
	// is unaffected by eviction: evicted records reload from disk.
	MaxEntries int
}

// Stats are cumulative store counters.
type Stats struct {
	// Entries is the current in-memory count.
	Entries int `json:"entries"`
	// Hits counts memory or disk gets that found a record; Misses the
	// rest. Computes counts executed compute functions; single-flight
	// followers share the leader's compute and do not increment it.
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Computes uint64 `json:"computes"`
	// PersistErrors counts disk writes that failed after a successful
	// compute; the record is still served from memory (GetOrCompute
	// treats persistence as best-effort).
	PersistErrors uint64 `json:"persist_errors"`
}

// Store is safe for concurrent use.
type Store struct {
	mu     sync.Mutex
	dir    string
	cap    int
	ll     *list.List               // front = most recently used
	items  map[string]*list.Element // value: *Record
	flight map[string]*flightCall
	stats  Stats
}

type flightCall struct {
	done chan struct{}
	rec  *Record
	err  error
}

// Open creates a store; with Config.Dir set, the directory is created and
// records persist across processes (loaded lazily on Get misses).
func Open(cfg Config) (*Store, error) {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 128
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return &Store{
		dir:    cfg.Dir,
		cap:    cfg.MaxEntries,
		ll:     list.New(),
		items:  make(map[string]*list.Element),
		flight: make(map[string]*flightCall),
	}, nil
}

// Get returns the record for the fingerprint, consulting memory then
// disk. Returned records are shared — treat them as read-only.
func (s *Store) Get(fp string) (*Record, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, err := s.getLocked(fp)
	if err != nil {
		return nil, false, err
	}
	return rec, rec != nil, nil
}

// Put inserts (or replaces) a record and persists it when the store has a
// directory.
func (s *Store) Put(rec *Record) error {
	if err := rec.validate(); err != nil {
		return err
	}
	if rec.CreatedUnix == 0 {
		rec.CreatedUnix = time.Now().Unix()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.putLocked(rec, true)
}

// GetOrCompute returns the cached record for the fingerprint or runs
// compute to produce it. Concurrent calls for the same fingerprint are
// deduplicated: one caller computes, the rest wait and share the result.
// Compute errors are returned to every waiter and are not cached. Disk
// persistence is best-effort here: if the write fails the record is still
// cached in memory and shared with every waiter, and the failure shows up
// in Stats.PersistErrors (use Put for write-or-error semantics).
func (s *Store) GetOrCompute(fp string, compute func() (*Record, error)) (*Record, error) {
	s.mu.Lock()
	rec, err := s.getLocked(fp)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	if rec != nil {
		s.mu.Unlock()
		return rec, nil
	}
	if c, ok := s.flight[fp]; ok {
		s.mu.Unlock()
		<-c.done
		return c.rec, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	s.flight[fp] = c
	s.stats.Computes++
	s.mu.Unlock()

	rec, err = compute()
	if err == nil && rec != nil {
		if rec.Fingerprint == "" {
			rec.Fingerprint = fp
		}
		if rec.CreatedUnix == 0 {
			rec.CreatedUnix = time.Now().Unix()
		}
		if rec.Fingerprint != fp {
			rec, err = nil, fmt.Errorf("store: compute for %s returned record keyed %s", fp, rec.Fingerprint)
		} else if verr := rec.validate(); verr != nil {
			rec, err = nil, verr
		}
	} else if err == nil {
		err = fmt.Errorf("store: compute for %s returned neither record nor error", fp)
	}

	s.mu.Lock()
	delete(s.flight, fp)
	if err == nil {
		if perr := s.putLocked(rec, true); perr != nil {
			s.stats.PersistErrors++
		}
	}
	s.mu.Unlock()

	c.rec, c.err = rec, err
	close(c.done)
	return rec, err
}

// StatsSnapshot returns the current counters.
func (s *Store) StatsSnapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = s.ll.Len()
	return st
}

// Len returns the in-memory entry count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// getLocked consults the LRU then the disk tier, promoting what it finds.
func (s *Store) getLocked(fp string) (*Record, error) {
	if el, ok := s.items[fp]; ok {
		s.ll.MoveToFront(el)
		s.stats.Hits++
		return el.Value.(*Record), nil
	}
	if s.dir != "" && ValidFingerprint(fp) {
		data, err := os.ReadFile(s.path(fp))
		if err == nil {
			var rec Record
			if uerr := json.Unmarshal(data, &rec); uerr != nil {
				return nil, fmt.Errorf("store: corrupt record %s: %w", fp, uerr)
			}
			if rec.Fingerprint != fp {
				return nil, fmt.Errorf("store: record file %s is keyed %s inside", fp, rec.Fingerprint)
			}
			if verr := rec.validate(); verr != nil {
				return nil, fmt.Errorf("store: corrupt record %s: %w", fp, verr)
			}
			s.stats.Hits++
			// Promote to memory without rewriting the file.
			if perr := s.putLocked(&rec, false); perr != nil {
				return nil, perr
			}
			return &rec, nil
		}
		if !os.IsNotExist(err) {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	s.stats.Misses++
	return nil, nil
}

// putLocked inserts into the LRU first — the memory tier stays coherent
// even when the disk tier misbehaves — then persists. Records are small
// (~1 KiB of JSON), so holding the mutex across the write is a deliberate
// simplicity tradeoff; the expensive pipeline computes already run
// outside the lock.
func (s *Store) putLocked(rec *Record, persist bool) error {
	if el, ok := s.items[rec.Fingerprint]; ok {
		el.Value = rec
		s.ll.MoveToFront(el)
	} else {
		s.items[rec.Fingerprint] = s.ll.PushFront(rec)
		for s.ll.Len() > s.cap {
			oldest := s.ll.Back()
			s.ll.Remove(oldest)
			delete(s.items, oldest.Value.(*Record).Fingerprint)
		}
	}
	if persist && s.dir != "" {
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return fmt.Errorf("store: encode %s: %w", rec.Fingerprint, err)
		}
		path := s.path(rec.Fingerprint)
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, data, 0o644); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if err := os.Rename(tmp, path); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	return nil
}

func (s *Store) path(fp string) string {
	return filepath.Join(s.dir, fp+".json")
}
