package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"strings"

	"dramdig/internal/machine"
	"dramdig/internal/metrics"
)

func testRecord(t *testing.T, fp string) *Record {
	t.Helper()
	def, err := machine.ByNo(1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(def, 1)
	if err != nil {
		t.Fatal(err)
	}
	truth := m.Truth()
	return &Record{
		Fingerprint:        fp,
		MachineName:        def.Name,
		Mapping:            truth,
		MappingFingerprint: truth.Fingerprint(),
		Match:              true,
		SimSeconds:         12.5,
		Measurements:       100_000,
	}
}

// fp returns a syntactically valid fake fingerprint.
func fp(i int) string {
	return fmt.Sprintf("%064x", i)
}

func TestValidFingerprint(t *testing.T) {
	if !ValidFingerprint(fp(7)) {
		t.Error("rejected a valid digest")
	}
	for _, bad := range []string{"", "short", fp(7)[:63] + "G", "../../../../etc/passwd"} {
		if ValidFingerprint(bad) {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestStorePutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rec := testRecord(t, fp(1))
	if err := st.Put(rec); err != nil {
		t.Fatal(err)
	}
	got, ok, err := st.Get(fp(1))
	if err != nil || !ok {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	if !got.Mapping.EquivalentTo(rec.Mapping) || got.MappingFingerprint != rec.MappingFingerprint {
		t.Error("record changed through the store")
	}

	// A fresh store over the same directory must serve the record from
	// its JSON file.
	st2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got2, ok, err := st2.Get(fp(1))
	if err != nil || !ok {
		t.Fatalf("disk get: ok=%v err=%v", ok, err)
	}
	if !got2.Mapping.EquivalentTo(rec.Mapping) || got2.SimSeconds != rec.SimSeconds {
		t.Error("disk round-trip changed the record")
	}
	if _, ok, _ := st2.Get(fp(99)); ok {
		t.Error("phantom record")
	}
}

func TestStoreRejectsBadRecords(t *testing.T) {
	st, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(&Record{Fingerprint: "nope"}); err == nil {
		t.Error("accepted invalid fingerprint")
	}
	if err := st.Put(&Record{Fingerprint: fp(1)}); err == nil {
		t.Error("accepted record without mapping")
	}
}

func TestStoreLRUEviction(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Config{Dir: dir, MaxEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := st.Put(testRecord(t, fp(i))); err != nil {
			t.Fatal(err)
		}
	}
	if st.Len() != 2 {
		t.Fatalf("len = %d, want 2", st.Len())
	}
	// fp(1) was evicted from memory but must reload from disk.
	if _, ok, err := st.Get(fp(1)); err != nil || !ok {
		t.Errorf("evicted record lost entirely: ok=%v err=%v", ok, err)
	}
	if st.Len() != 2 {
		t.Errorf("reload grew the LRU past its cap: %d", st.Len())
	}

	// Memory-only stores drop evicted entries for good.
	mem, err := Open(Config{MaxEntries: 1})
	if err != nil {
		t.Fatal(err)
	}
	_ = mem.Put(testRecord(t, fp(1)))
	_ = mem.Put(testRecord(t, fp(2)))
	if _, ok, _ := mem.Get(fp(1)); ok {
		t.Error("memory-only store resurrected an evicted record")
	}
}

// TestStoreSingleFlight is the concurrency contract: many goroutines
// requesting one fingerprint trigger exactly one compute, and everyone
// shares its outcome. Run with -race.
func TestStoreSingleFlight(t *testing.T) {
	st, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	var computes int32
	rec := testRecord(t, fp(5))

	const goroutines = 32
	var wg sync.WaitGroup
	results := make([]*Record, goroutines)
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g], errs[g] = st.GetOrCompute(fp(5), func() (*Record, error) {
				atomic.AddInt32(&computes, 1)
				time.Sleep(20 * time.Millisecond) // hold the flight open
				return rec, nil
			})
		}(g)
	}
	wg.Wait()
	if computes != 1 {
		t.Fatalf("compute ran %d times, want 1", computes)
	}
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if results[g] != rec {
			t.Errorf("goroutine %d got a different record", g)
		}
	}
	// Afterwards it's a plain cache hit.
	if _, err := st.GetOrCompute(fp(5), func() (*Record, error) {
		t.Error("compute ran on a warm cache")
		return nil, errors.New("unreachable")
	}); err != nil {
		t.Fatal(err)
	}
	stats := st.StatsSnapshot()
	if stats.Computes != 1 || stats.Entries != 1 {
		t.Errorf("stats = %+v, want 1 compute / 1 entry", stats)
	}
}

// TestStoreSingleFlightConcurrentKeys: distinct keys compute
// independently and concurrently without cross-talk. Run with -race.
func TestStoreSingleFlightConcurrentKeys(t *testing.T) {
	st, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	const keys, per = 8, 8
	var computes int32
	var wg sync.WaitGroup
	for k := 0; k < keys; k++ {
		rec := testRecord(t, fp(100+k))
		for g := 0; g < per; g++ {
			wg.Add(1)
			go func(k int, rec *Record) {
				defer wg.Done()
				got, err := st.GetOrCompute(fp(100+k), func() (*Record, error) {
					atomic.AddInt32(&computes, 1)
					time.Sleep(5 * time.Millisecond)
					return rec, nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if got.Fingerprint != fp(100+k) {
					t.Errorf("key %d served record %s", k, got.Fingerprint)
				}
			}(k, rec)
		}
	}
	wg.Wait()
	if computes != keys {
		t.Errorf("computes = %d, want %d (one per key)", computes, keys)
	}
}

func TestStoreComputeErrorNotCached(t *testing.T) {
	st, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("transient")
	if _, err := st.GetOrCompute(fp(9), func() (*Record, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the compute error", err)
	}
	// The failure must not poison the key.
	rec := testRecord(t, fp(9))
	got, err := st.GetOrCompute(fp(9), func() (*Record, error) { return rec, nil })
	if err != nil || got != rec {
		t.Fatalf("retry after error: got %v err %v", got, err)
	}
}

func TestStoreRejectsCorruptDiskRecord(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, fp(3)+".json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Get(fp(3)); err == nil {
		t.Error("corrupt record served without error")
	}
}

func TestStoreComputeKeyMismatch(t *testing.T) {
	st, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.GetOrCompute(fp(1), func() (*Record, error) {
		return testRecord(t, fp(2)), nil
	}); err == nil {
		t.Error("mismatched record key accepted")
	}
}

func TestStoreRejectsMiskeyedDiskRecord(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	// Drop a legacy flat file whose content is keyed by a different
	// fingerprint (e.g. an operator renaming cache files by hand).
	data, err := json.Marshal(testRecord(t, fp(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, fp(2)+".json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Get(fp(2)); err == nil {
		t.Error("mis-keyed disk record served without error")
	}
}

func TestStoreTraceTierDisk(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: filepath.Join(dir, "records"), TraceDir: filepath.Join(dir, "traces")})
	if err != nil {
		t.Fatal(err)
	}
	key := fp(3)
	if _, ok, _ := s.GetTrace(key); ok {
		t.Fatal("trace present before put")
	}
	if _, ok := s.StatTrace(key); ok {
		t.Fatal("stat present before put")
	}
	payload := []byte("DRTR-pretend-trace-bytes")
	w, err := s.TraceWriter(key)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(payload); err != nil {
		t.Fatal(err)
	}
	// Atomicity: nothing at the content address until Close.
	if _, ok := s.StatTrace(key); ok {
		t.Fatal("trace visible before Close")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.GetTrace(key)
	if err != nil || !ok {
		t.Fatalf("GetTrace: ok=%v err=%v", ok, err)
	}
	if string(got) != string(payload) {
		t.Fatalf("trace bytes corrupted: %q", got)
	}
	if n, ok := s.StatTrace(key); !ok || n != int64(len(payload)) {
		t.Fatalf("StatTrace = %d,%v", n, ok)
	}
	// Traces live inside the shared segment keyspace now, so there is no
	// per-trace flat path and no stray files in the trace directory.
	if p := s.TracePath(key); p != "" {
		t.Fatalf("segment-backed store reports flat trace path %q", p)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "traces"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("trace dir holds %d entries, want 0", len(entries))
	}

	// A second store over the same directories sees the trace.
	s2, err := Open(Config{Dir: filepath.Join(dir, "records"), TraceDir: filepath.Join(dir, "traces")})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s2.GetTrace(key); !ok {
		t.Fatal("trace not shared across store instances")
	}

	if _, err := s.TraceWriter("../evil"); err == nil {
		t.Fatal("TraceWriter accepted a malformed fingerprint")
	}
	if _, _, err := s.GetTrace("../evil"); err == nil {
		t.Fatal("GetTrace accepted a malformed fingerprint")
	}
}

func TestStoreTraceTierMemory(t *testing.T) {
	s, err := Open(Config{MaxEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.TracePath(fp(1)) != "" {
		t.Fatal("memory store reports a trace path")
	}
	for i := 1; i <= 3; i++ {
		if err := s.PutTrace(fp(i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// FIFO eviction past the cap: fp(1) is gone, fp(2) and fp(3) remain.
	if _, ok, _ := s.GetTrace(fp(1)); ok {
		t.Fatal("oldest trace survived past the cap")
	}
	for i := 2; i <= 3; i++ {
		data, ok, err := s.GetTrace(fp(i))
		if err != nil || !ok || len(data) != 1 || data[0] != byte(i) {
			t.Fatalf("trace %d: ok=%v err=%v data=%v", i, ok, err, data)
		}
	}
	// Overwriting does not double-count against the cap.
	if err := s.PutTrace(fp(3), []byte{9}); err != nil {
		t.Fatal(err)
	}
	if data, ok, _ := s.GetTrace(fp(3)); !ok || data[0] != 9 {
		t.Fatal("overwrite lost")
	}
	if _, ok, _ := s.GetTrace(fp(2)); !ok {
		t.Fatal("overwrite evicted a sibling")
	}
}

// TestStoreMetrics: RegisterMetrics exposes cache-outcome counters, the
// LRU population gauge and disk-tier latency histograms.
func TestStoreMetrics(t *testing.T) {
	r := metrics.NewRegistry()
	s, err := Open(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	s.RegisterMetrics(r)

	if err := s.Put(testRecord(t, fp(1))); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(fp(1)); err != nil || !ok {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	if _, ok, err := s.Get(fp(2)); err != nil || ok {
		t.Fatalf("negative get: ok=%v err=%v", ok, err)
	}

	st := s.StatsSnapshot()
	if st.Hits != 1 || st.NegativeLookups != 1 {
		t.Fatalf("stats: %+v", st)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"dramdig_store_hits_total 1",
		"dramdig_store_negative_lookups_total 1",
		"dramdig_store_entries 1",
		"dramdig_store_disk_write_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics render missing %q:\n%s", want, out)
		}
	}
}
