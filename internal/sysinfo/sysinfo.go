// Package sysinfo models the "System Information" category of DRAMDig's
// domain knowledge: the facts a tool can read from decode-dimms and
// dmidecode on a live system — DIMM population, per-DIMM geometry, total
// bank count, memory size and ECC support.
//
// The package also renders a dmidecode/decode-dimms-style text report so
// the CLI output resembles what an operator of the real tool would see.
package sysinfo

import (
	"fmt"
	"strings"

	"dramdig/internal/specs"
)

// DIMMConfig is the paper's configuration quadruple:
// (channels, DIMMs per channel, ranks per DIMM, banks per rank).
type DIMMConfig struct {
	Channels     int
	DIMMsPerChan int
	RanksPerDIMM int
	BanksPerRank int
}

// String renders the quadruple in the paper's "2, 1, 2, 8" style.
func (c DIMMConfig) String() string {
	return fmt.Sprintf("%d, %d, %d, %d", c.Channels, c.DIMMsPerChan, c.RanksPerDIMM, c.BanksPerRank)
}

// Validate checks the quadruple.
func (c DIMMConfig) Validate() error {
	for _, v := range []struct {
		name string
		n    int
	}{
		{"channels", c.Channels},
		{"DIMMs per channel", c.DIMMsPerChan},
		{"ranks per DIMM", c.RanksPerDIMM},
		{"banks per rank", c.BanksPerRank},
	} {
		if v.n <= 0 || v.n&(v.n-1) != 0 {
			return fmt.Errorf("sysinfo: %s = %d is not a positive power of two", v.name, v.n)
		}
	}
	return nil
}

// TotalBanks returns the total bank count (channel, DIMM and rank folded
// in, as the paper's bank tuple does).
func (c DIMMConfig) TotalBanks() int {
	return c.Channels * c.DIMMsPerChan * c.RanksPerDIMM * c.BanksPerRank
}

// Info is everything DRAMDig's Step 2 and Step 3 consume from the system.
type Info struct {
	// Microarch is the CPU microarchitecture ("Sandy Bridge", …).
	Microarch string
	// CPU is the processor model string.
	CPU string
	// Standard is the DRAM standard (DDR3/DDR4).
	Standard specs.Standard
	// MemBytes is the total physical memory size.
	MemBytes uint64
	// Config is the DIMM population quadruple.
	Config DIMMConfig
	// Chip is the DRAM chip geometry from decode-dimms / the data
	// sheet.
	Chip specs.ChipSpec
	// ECC reports whether the DIMMs are ECC-protected. (All of the
	// paper's test machines are non-ECC consumer parts.)
	ECC bool
}

// Validate checks internal consistency: the DIMM population must account
// for the advertised memory size given the chip geometry.
func (i Info) Validate() error {
	if err := i.Config.Validate(); err != nil {
		return err
	}
	if i.MemBytes == 0 || i.MemBytes&(i.MemBytes-1) != 0 {
		return fmt.Errorf("sysinfo: memory size %d is not a power of two", i.MemBytes)
	}
	if i.Chip.Standard != i.Standard {
		return fmt.Errorf("sysinfo: chip standard %s does not match system standard %s",
			i.Chip.Standard, i.Standard)
	}
	if i.Config.BanksPerRank != i.Chip.BanksPerRank {
		return fmt.Errorf("sysinfo: config says %d banks/rank, chip says %d",
			i.Config.BanksPerRank, i.Chip.BanksPerRank)
	}
	return nil
}

// TotalBanks is shorthand for Config.TotalBanks().
func (i Info) TotalBanks() int { return i.Config.TotalBanks() }

// PhysBits returns log2(MemBytes).
func (i Info) PhysBits() uint {
	var b uint
	for s := i.MemBytes; s > 1; s >>= 1 {
		b++
	}
	return b
}

// Report renders a decode-dimms/dmidecode-flavoured summary.
func (i Info) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Processor:        %s (%s)\n", i.CPU, i.Microarch)
	fmt.Fprintf(&sb, "Memory type:      %s\n", i.Standard)
	fmt.Fprintf(&sb, "Total size:       %d GiB (%d-bit physical space)\n",
		i.MemBytes>>30, i.PhysBits())
	fmt.Fprintf(&sb, "Population:       %d channel(s) x %d DIMM(s) x %d rank(s) x %d bank(s)\n",
		i.Config.Channels, i.Config.DIMMsPerChan, i.Config.RanksPerDIMM, i.Config.BanksPerRank)
	fmt.Fprintf(&sb, "Total banks:      %d\n", i.TotalBanks())
	fmt.Fprintf(&sb, "DRAM chip:        %s\n", i.Chip)
	fmt.Fprintf(&sb, "Row bits (spec):  %d\n", i.Chip.PhysRowBits())
	fmt.Fprintf(&sb, "Col bits (spec):  %d\n", i.Chip.PhysColBits())
	fmt.Fprintf(&sb, "ECC:              %v\n", i.ECC)
	return sb.String()
}
