package sysinfo

import (
	"strings"
	"testing"

	"dramdig/internal/specs"
)

func testInfo(t testing.TB) Info {
	t.Helper()
	chip, err := specs.Lookup("MT41K512M8")
	if err != nil {
		t.Fatal(err)
	}
	return Info{
		Microarch: "Sandy Bridge",
		CPU:       "i5-2400",
		Standard:  specs.DDR3,
		MemBytes:  8 << 30,
		Config:    DIMMConfig{Channels: 2, DIMMsPerChan: 1, RanksPerDIMM: 1, BanksPerRank: 8},
		Chip:      chip,
	}
}

func TestDIMMConfig(t *testing.T) {
	c := DIMMConfig{Channels: 2, DIMMsPerChan: 1, RanksPerDIMM: 2, BanksPerRank: 8}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.TotalBanks() != 32 {
		t.Errorf("TotalBanks = %d", c.TotalBanks())
	}
	if c.String() != "2, 1, 2, 8" {
		t.Errorf("String = %q", c.String())
	}
	for _, bad := range []DIMMConfig{
		{Channels: 0, DIMMsPerChan: 1, RanksPerDIMM: 1, BanksPerRank: 8},
		{Channels: 3, DIMMsPerChan: 1, RanksPerDIMM: 1, BanksPerRank: 8},
		{Channels: 2, DIMMsPerChan: 1, RanksPerDIMM: 1, BanksPerRank: 12},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
}

func TestInfoValidate(t *testing.T) {
	info := testInfo(t)
	if err := info.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := info
	bad.MemBytes = 7 << 30
	if err := bad.Validate(); err == nil {
		t.Error("non-power-of-two memory accepted")
	}
	bad = info
	bad.Standard = specs.DDR4
	if err := bad.Validate(); err == nil {
		t.Error("chip standard mismatch accepted")
	}
	bad = info
	bad.Config.BanksPerRank = 16
	if err := bad.Validate(); err == nil {
		t.Error("banks-per-rank mismatch accepted")
	}
}

func TestPhysBits(t *testing.T) {
	info := testInfo(t)
	if info.PhysBits() != 33 {
		t.Errorf("PhysBits = %d, want 33", info.PhysBits())
	}
	info.MemBytes = 4 << 30
	if info.PhysBits() != 32 {
		t.Errorf("PhysBits = %d, want 32", info.PhysBits())
	}
}

func TestTotalBanks(t *testing.T) {
	if got := testInfo(t).TotalBanks(); got != 16 {
		t.Errorf("TotalBanks = %d", got)
	}
}

func TestReportContents(t *testing.T) {
	r := testInfo(t).Report()
	for _, want := range []string{
		"i5-2400", "Sandy Bridge", "DDR3", "8 GiB", "33-bit",
		"2 channel(s)", "Total banks:      16", "MT41K512M8",
		"Row bits (spec):  16", "Col bits (spec):  13",
	} {
		if !strings.Contains(r, want) {
			t.Errorf("report missing %q:\n%s", want, r)
		}
	}
}
