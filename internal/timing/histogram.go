// Latency histogram support: a reusable bucketed view of the timing
// channel, used by the timing-histogram example and by diagnostics.

package timing

import (
	"fmt"
	"math/rand"
	"strings"

	"dramdig/internal/addr"
)

// Histogram is a fixed-range bucketed latency distribution with optional
// ground-truth labelling (conflict vs other) for visualization.
type Histogram struct {
	Lo, Hi   float64
	Conflict []int // per bucket, samples labelled as conflicts
	Other    []int // per bucket, unlabelled / non-conflict samples
}

// NewHistogram builds an empty histogram with the given range and bucket
// count.
func NewHistogram(lo, hi float64, buckets int) (*Histogram, error) {
	if buckets < 2 {
		return nil, fmt.Errorf("timing: need at least 2 buckets")
	}
	if hi <= lo {
		return nil, fmt.Errorf("timing: invalid range [%v, %v]", lo, hi)
	}
	return &Histogram{
		Lo:       lo,
		Hi:       hi,
		Conflict: make([]int, buckets),
		Other:    make([]int, buckets),
	}, nil
}

// Buckets returns the bucket count.
func (h *Histogram) Buckets() int { return len(h.Other) }

// BucketWidth returns one bucket's latency span.
func (h *Histogram) BucketWidth() float64 {
	return (h.Hi - h.Lo) / float64(h.Buckets())
}

// bucketOf clamps a value into a bucket index.
func (h *Histogram) bucketOf(v float64) int {
	idx := int((v - h.Lo) / h.BucketWidth())
	if idx < 0 {
		idx = 0
	}
	if idx >= h.Buckets() {
		idx = h.Buckets() - 1
	}
	return idx
}

// Add records a sample; conflict labels it as a ground-truth row-buffer
// conflict (pass false when no label is available).
func (h *Histogram) Add(v float64, conflict bool) {
	if conflict {
		h.Conflict[h.bucketOf(v)]++
	} else {
		h.Other[h.bucketOf(v)]++
	}
}

// Total returns the sample count.
func (h *Histogram) Total() int {
	n := 0
	for i := range h.Other {
		n += h.Other[i] + h.Conflict[i]
	}
	return n
}

// Render draws the histogram with per-bucket counts and an optional
// threshold marker. 'o' marks non-conflict samples, '#' conflicts.
func (h *Histogram) Render(threshold float64, width int) string {
	if width <= 0 {
		width = 60
	}
	maxCount := 1
	for i := range h.Other {
		if n := h.Other[i] + h.Conflict[i]; n > maxCount {
			maxCount = n
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-9s %-6s %s\n", "ns", "count", "o = buffered/other-bank, # = row-buffer conflict")
	w := h.BucketWidth()
	for i := range h.Other {
		center := h.Lo + (float64(i)+0.5)*w
		bar := strings.Repeat("o", h.Other[i]*width/maxCount) +
			strings.Repeat("#", h.Conflict[i]*width/maxCount)
		marker := ""
		if threshold >= h.Lo+float64(i)*w && threshold < h.Lo+float64(i+1)*w {
			marker = " <-- threshold"
		}
		fmt.Fprintf(&sb, "%8.1f  %-5d %s%s\n", center, h.Other[i]+h.Conflict[i], bar, marker)
	}
	return sb.String()
}

// SampleChannel fills a histogram with n random-pair samples from the
// meter's target, labelling them with the provided oracle (pass nil for
// unlabelled sampling). The histogram range derives from the calibration.
func SampleChannel(meter *Meter, cal CalibrationResult, rng *rand.Rand, n, buckets int,
	oracle func(a, b addr.Phys) bool) (*Histogram, error) {
	h, err := NewHistogram(cal.LowCenter-10, cal.HighCenter+10, buckets)
	if err != nil {
		return nil, err
	}
	pool := meter.target.Pool()
	for i := 0; i < n; i++ {
		a := pool.RandomAddr(rng, 1<<CacheLineBits)
		b := pool.RandomAddr(rng, 1<<CacheLineBits)
		if a == b {
			continue
		}
		v := meter.Sample(a, b)
		h.Add(v, oracle != nil && oracle(a, b))
	}
	return h, nil
}
