package timing

import (
	"math/rand"
	"strings"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	h, err := NewHistogram(100, 200, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(105, false) // bucket 0
	h.Add(195, true)  // bucket 9
	h.Add(50, false)  // clamped to bucket 0
	h.Add(500, true)  // clamped to bucket 9
	if h.Other[0] != 2 || h.Conflict[9] != 2 {
		t.Errorf("bucketing wrong: %+v", h)
	}
	if h.Total() != 4 {
		t.Errorf("total = %d", h.Total())
	}
	if h.BucketWidth() != 10 {
		t.Errorf("width = %v", h.BucketWidth())
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(10, 5, 8); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := NewHistogram(0, 10, 1); err == nil {
		t.Error("single bucket accepted")
	}
}

func TestHistogramRender(t *testing.T) {
	h, _ := NewHistogram(300, 360, 6)
	for i := 0; i < 30; i++ {
		h.Add(305, false)
	}
	for i := 0; i < 5; i++ {
		h.Add(345, true)
	}
	out := h.Render(325, 40)
	if !strings.Contains(out, "<-- threshold") {
		t.Error("threshold marker missing")
	}
	if !strings.Contains(out, "o") || !strings.Contains(out, "#") {
		t.Error("bars missing")
	}
}

// TestHistogramRenderGolden pins the exact rendering — trace diagnostics
// (tracectl stats) and the examples show this text to users, so format
// drift should be a conscious choice, not an accident.
func TestHistogramRenderGolden(t *testing.T) {
	h, err := NewHistogram(40, 80, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		h.Add(45, false) // bucket 0
	}
	for i := 0; i < 2; i++ {
		h.Add(55, false) // bucket 1
	}
	h.Add(65, true)   // bucket 2
	h.Add(75, true)   // bucket 3
	h.Add(75, false)  // bucket 3, mixed bar
	h.Add(999, true)  // clamps into the last bucket
	h.Add(-999, true) // clamps into the first bucket

	const golden = "ns        count  o = buffered/other-bank, # = row-buffer conflict\n" +
		"    45.0  9     oooooooooooooo#\n" +
		"    55.0  2     ooo\n" +
		"    65.0  1     # <-- threshold\n" +
		"    75.0  3     o###\n"
	if got := h.Render(60, 16); got != golden {
		t.Errorf("render drifted:\n got:\n%s\nwant:\n%s", got, golden)
	}
	if h.Total() != 15 {
		t.Errorf("Total = %d, want 15", h.Total())
	}
}

// TestSampleChannelBimodal: sampling the real channel produces the
// expected two modes with the conflicts above the threshold.
func TestSampleChannelBimodal(t *testing.T) {
	m := no1(t)
	meter, _ := NewMeter(m, 1200, 3)
	rng := rand.New(rand.NewSource(6))
	cal, err := meter.Calibrate(rng, 768)
	if err != nil {
		t.Fatal(err)
	}
	h, err := SampleChannel(meter, cal, rng, 1500, 24, m.Truth().SBDR)
	if err != nil {
		t.Fatal(err)
	}
	// All conflict-labelled mass must sit above the threshold bucket,
	// all other mass below (small spill tolerated).
	thIdx := h.bucketOf(cal.Threshold)
	misplacedConf, misplacedOther, conf, other := 0, 0, 0, 0
	for i := range h.Other {
		conf += h.Conflict[i]
		other += h.Other[i]
		if i < thIdx {
			misplacedConf += h.Conflict[i]
		} else {
			misplacedOther += h.Other[i]
		}
	}
	if conf == 0 {
		t.Fatal("no conflict samples at all")
	}
	if float64(misplacedConf) > 0.05*float64(conf) || float64(misplacedOther) > 0.05*float64(other) {
		t.Errorf("modes overlap: %d/%d conflicts below threshold, %d/%d others above",
			misplacedConf, conf, misplacedOther, other)
	}
}
