// Package timing provides the measurement harness every
// reverse-engineering tool in this repository builds on: the Target
// interface a simulated machine implements, a Meter that turns raw
// latency samples into robust same-bank-different-row (SBDR) decisions,
// and threshold calibration from the bimodal latency distribution.
package timing

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"dramdig/internal/addr"
	"dramdig/internal/alloc"
	"dramdig/internal/metrics"
	"dramdig/internal/sysinfo"
)

// Target is the surface a tool may use: system knowledge, its own
// allocated memory, and the timing primitive. Ground truth is NOT part of
// this interface.
type Target interface {
	// SysInfo returns decode-dimms/dmidecode-level system information.
	SysInfo() sysinfo.Info
	// Pool returns the tool's allocated physical pages.
	Pool() *alloc.Pool
	// MeasurePair returns the mean per-access latency (ns) of an
	// alternating access loop over a and b with the given rounds.
	MeasurePair(a, b addr.Phys, rounds int) float64
	// ClockNs returns the simulated clock (ns); tools read it to report
	// their own cost.
	ClockNs() float64
	// AdvanceClock charges tool-side overhead to the simulated clock.
	AdvanceClock(ns float64)
}

// CacheLineBits is log2 of the cache line size. Addresses are always
// measured at cache-line granularity: two addresses within one line are
// the same memory transaction, so bits below this are column/offset bits
// by construction — standard domain knowledge used by every tool.
const CacheLineBits = 6

// Instrument is hot-path measurement instrumentation shared by a run's
// meters: a raw-sample throughput counter and a histogram of the measured
// latencies themselves (ns) — the latter renders the bimodal SBDR
// distribution directly on /v1/metrics. A nil *Instrument is a no-op, so
// the uninstrumented hot path pays exactly one predictable branch per raw
// measurement.
type Instrument struct {
	// Samples counts raw MeasurePair calls.
	Samples *metrics.Counter
	// LatencyNs is the distribution of measured per-access latencies.
	LatencyNs *metrics.Histogram
}

// observe records one raw measurement. The metric types are themselves
// nil-safe, so a partially populated Instrument works too.
func (in *Instrument) observe(v float64) {
	if in == nil {
		return
	}
	in.Samples.Inc()
	in.LatencyNs.Observe(v)
}

// Meter wraps a Target with a measurement policy: rounds per measurement,
// median-of-repeats robustness, a calibrated conflict threshold, and
// sentinel pairs that detect when platform drift has invalidated the
// threshold.
type Meter struct {
	target   Target
	rounds   int
	repeats  int
	thresh   float64
	measures uint64
	inst     *Instrument

	haveSentinels bool
	sentinelLow   [2]addr.Phys // a pair known not to conflict
	sentinelHigh  [2]addr.Phys // a pair known to conflict
}

// NewMeter builds a meter. rounds is the number of alternating access
// rounds per raw measurement; repeats is how many raw measurements a
// Sample aggregates by median (odd values recommended).
func NewMeter(target Target, rounds, repeats int) (*Meter, error) {
	if rounds < 4 {
		return nil, fmt.Errorf("timing: rounds %d too small", rounds)
	}
	if repeats < 1 {
		return nil, fmt.Errorf("timing: repeats %d must be >= 1", repeats)
	}
	return &Meter{target: target, rounds: rounds, repeats: repeats}, nil
}

// Measurements returns the number of raw measurements performed.
func (m *Meter) Measurements() uint64 { return m.measures }

// Threshold returns the calibrated conflict threshold (0 until Calibrate).
func (m *Meter) Threshold() float64 { return m.thresh }

// SetThreshold overrides the threshold (tests, ablations).
func (m *Meter) SetThreshold(t float64) { m.thresh = t }

// Rounds returns the configured rounds per raw measurement.
func (m *Meter) Rounds() int { return m.rounds }

// SetInstrument attaches hot-path instrumentation (nil detaches it).
func (m *Meter) SetInstrument(in *Instrument) { m.inst = in }

// Sample measures the pair repeats times and returns the median latency.
func (m *Meter) Sample(a, b addr.Phys) float64 {
	return m.SampleN(a, b, m.repeats)
}

// SampleN measures the pair n times and returns the median latency.
func (m *Meter) SampleN(a, b addr.Phys, n int) float64 {
	if n < 1 {
		n = 1
	}
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = m.target.MeasurePair(a, b, m.rounds)
		m.measures++
		m.inst.observe(samples[i])
	}
	return median(samples)
}

// IsConflict reports whether the pair exhibits a row-buffer conflict
// (same bank, different row) according to the calibrated threshold.
func (m *Meter) IsConflict(a, b addr.Phys) bool {
	return m.Sample(a, b) >= m.thresh
}

// IsConflictOnce is a single-measurement (no repeats) conflict test; the
// partition inner loop uses it with its own tolerance machinery.
func (m *Meter) IsConflictOnce(a, b addr.Phys) bool {
	m.measures++
	v := m.target.MeasurePair(a, b, m.rounds)
	m.inst.observe(v)
	return v >= m.thresh
}

// CalibrationResult describes the fitted latency distribution.
type CalibrationResult struct {
	// LowCenter and HighCenter are the two cluster means (ns).
	LowCenter, HighCenter float64
	// Threshold is the decision boundary.
	Threshold float64
	// HighFrac is the fraction of calibration samples in the high
	// cluster; for random pairs it approximates 1/#banks.
	HighFrac float64
	// Samples is the number of calibration pairs measured.
	Samples int
}

// Separation returns the distance between cluster centers.
func (c CalibrationResult) Separation() float64 { return c.HighCenter - c.LowCenter }

// String renders the calibration.
func (c CalibrationResult) String() string {
	return fmt.Sprintf("low %.1f ns, high %.1f ns, threshold %.1f ns (%.1f%% high of %d samples)",
		c.LowCenter, c.HighCenter, c.Threshold, c.HighFrac*100, c.Samples)
}

// Calibrate measures `samples` random address pairs and fits a
// two-cluster (1-D k-means) model to the latency distribution: the low
// cluster is buffered/other-bank accesses, the high cluster is row-buffer
// conflicts. The threshold is placed at the midpoint of the cluster
// centers. Random pairs hit the same bank with probability ≈ 1/#banks, so
// `samples` should be a generous multiple of the bank count.
func (m *Meter) Calibrate(rng *rand.Rand, samples int) (CalibrationResult, error) {
	return m.CalibrateContext(nil, rng, samples)
}

// CalibrateContext is Calibrate observing a context: calibration is a
// long measurement loop, so cancellation is polled inside it and returns
// the context's error. A nil ctx disables the polling.
func (m *Meter) CalibrateContext(ctx context.Context, rng *rand.Rand, samples int) (CalibrationResult, error) {
	pool := m.target.Pool()
	if pool.NumPages() < 2 {
		return CalibrationResult{}, fmt.Errorf("timing: pool too small to calibrate")
	}
	if samples < 32 {
		samples = 32
	}
	type sample struct {
		a, b addr.Phys
		v    float64
	}
	taken := make([]sample, 0, samples)
	vals := make([]float64, 0, samples)
	for i := 0; i < samples; i++ {
		if ctx != nil && i&31 == 0 {
			if err := ctx.Err(); err != nil {
				return CalibrationResult{}, err
			}
		}
		a := pool.RandomAddr(rng, 1<<CacheLineBits)
		b := pool.RandomAddr(rng, 1<<CacheLineBits)
		if a == b {
			continue
		}
		v := m.SampleN(a, b, 3)
		taken = append(taken, sample{a, b, v})
		vals = append(vals, v)
	}
	lo, hi, hiFrac, ok := twoMeans(vals)
	if !ok || hi-lo < 1 {
		return CalibrationResult{}, fmt.Errorf("timing: calibration found no latency separation (lo %.1f, hi %.1f)", lo, hi)
	}
	res := CalibrationResult{
		LowCenter:  lo,
		HighCenter: hi,
		Threshold:  (lo + hi) / 2,
		HighFrac:   hiFrac,
		Samples:    len(vals),
	}
	m.thresh = res.Threshold
	// Remember the pairs closest to the cluster centers as drift
	// sentinels: their classification is known, so a later flip signals
	// that the channel has drifted away from the threshold.
	bestLow, bestHigh := -1, -1
	for i, s := range taken {
		if bestLow < 0 || abs(s.v-lo) < abs(taken[bestLow].v-lo) {
			bestLow = i
		}
		if bestHigh < 0 || abs(s.v-hi) < abs(taken[bestHigh].v-hi) {
			bestHigh = i
		}
	}
	if bestLow >= 0 && bestHigh >= 0 && bestLow != bestHigh {
		m.sentinelLow = [2]addr.Phys{taken[bestLow].a, taken[bestLow].b}
		m.sentinelHigh = [2]addr.Phys{taken[bestHigh].a, taken[bestHigh].b}
		m.haveSentinels = true
	}
	return res, nil
}

// DriftOK re-measures the sentinel pairs and reports whether they still
// classify as expected. A false return means platform drift has moved the
// latency distribution relative to the calibrated threshold and the caller
// should re-calibrate. Meters without sentinels report true.
func (m *Meter) DriftOK() bool {
	if !m.haveSentinels {
		return true
	}
	low := m.SampleN(m.sentinelLow[0], m.sentinelLow[1], 3)
	high := m.SampleN(m.sentinelHigh[0], m.sentinelHigh[1], 3)
	return low < m.thresh && high >= m.thresh
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TwoMeans runs the calibration's 1-D 2-means clustering on an arbitrary
// latency sample, returning cluster centers (lo <= hi) and the
// high-cluster fraction. Trace diagnostics use it to characterize
// recorded and perturbed timing channels with the exact model the Meter
// calibrates with.
func TwoMeans(vals []float64) (lo, hi, hiFrac float64, ok bool) {
	return twoMeans(vals)
}

// twoMeans runs 1-D 2-means clustering, returning cluster centers
// (lo <= hi) and the high-cluster fraction.
func twoMeans(vals []float64) (lo, hi, hiFrac float64, ok bool) {
	if len(vals) < 8 {
		return 0, 0, 0, false
	}
	trimmed := append([]float64(nil), vals...)
	sort.Float64s(trimmed)
	lo, hi = trimmed[0], trimmed[len(trimmed)-1]
	if hi == lo {
		return lo, hi, 0, false
	}
	var nHi int
	for iter := 0; iter < 64; iter++ {
		var sumLo, sumHi float64
		var nLo int
		nHi = 0
		mid := (lo + hi) / 2
		for _, v := range trimmed {
			if v >= mid {
				sumHi += v
				nHi++
			} else {
				sumLo += v
				nLo++
			}
		}
		if nLo == 0 || nHi == 0 {
			return lo, hi, 0, false
		}
		newLo, newHi := sumLo/float64(nLo), sumHi/float64(nHi)
		if newLo == lo && newHi == hi {
			break
		}
		lo, hi = newLo, newHi
	}
	return lo, hi, float64(nHi) / float64(len(trimmed)), true
}

func median(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Median is the exported median helper used by tools for their own sample
// aggregation.
func Median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	return median(v)
}
