package timing

import (
	"math"
	"math/rand"
	"testing"

	"dramdig/internal/machine"
)

func no1(t testing.TB) *machine.Machine {
	t.Helper()
	m, err := machine.NewByNo(1, 21)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMeterValidation(t *testing.T) {
	m := no1(t)
	if _, err := NewMeter(m, 2, 1); err == nil {
		t.Error("tiny rounds accepted")
	}
	if _, err := NewMeter(m, 100, 0); err == nil {
		t.Error("zero repeats accepted")
	}
	if _, err := NewMeter(m, 100, 3); err != nil {
		t.Error(err)
	}
}

func TestCalibrateSeparatesModes(t *testing.T) {
	m := no1(t)
	meter, _ := NewMeter(m, 1200, 3)
	cal, err := meter.Calibrate(rand.New(rand.NewSource(1)), 1024)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Separation() < 25 {
		t.Errorf("separation %.1f ns too small", cal.Separation())
	}
	if cal.Threshold <= cal.LowCenter || cal.Threshold >= cal.HighCenter {
		t.Errorf("threshold %.1f outside (%f, %f)", cal.Threshold, cal.LowCenter, cal.HighCenter)
	}
	// Random pairs land in the same bank ≈ 1/16 of the time.
	if cal.HighFrac < 0.02 || cal.HighFrac > 0.15 {
		t.Errorf("high fraction %.3f implausible for 16 banks", cal.HighFrac)
	}
	if meter.Threshold() != cal.Threshold {
		t.Error("meter did not adopt the threshold")
	}
}

// TestIsConflictAgainstTruth: after calibration, the meter's SBDR
// decisions agree with ground truth on hundreds of random pairs.
func TestIsConflictAgainstTruth(t *testing.T) {
	m := no1(t)
	meter, _ := NewMeter(m, 1200, 3)
	rng := rand.New(rand.NewSource(2))
	if _, err := meter.Calibrate(rng, 1024); err != nil {
		t.Fatal(err)
	}
	wrong := 0
	const n = 600
	for i := 0; i < n; i++ {
		a := m.Pool().RandomAddr(rng, 64)
		b := m.Pool().RandomAddr(rng, 64)
		if a == b {
			continue
		}
		if meter.IsConflict(a, b) != m.Truth().SBDR(a, b) {
			wrong++
		}
	}
	if frac := float64(wrong) / n; frac > 0.02 {
		t.Errorf("%.1f%% misclassification, want < 2%%", frac*100)
	}
}

func TestSampleMedianRobustness(t *testing.T) {
	// Median of odd repeats tolerates one wild sample.
	if got := Median([]float64{10, 1000, 12}); got != 12 {
		t.Errorf("median = %v", got)
	}
	if got := Median([]float64{10, 20}); got != 15 {
		t.Errorf("even median = %v", got)
	}
	if got := Median(nil); got != 0 {
		t.Errorf("empty median = %v", got)
	}
}

func TestMeasurementCounting(t *testing.T) {
	m := no1(t)
	meter, _ := NewMeter(m, 600, 3)
	a := m.Pool().Pages()[0]
	meter.Sample(a, a+128)
	if meter.Measurements() != 3 {
		t.Errorf("measurements = %d, want 3", meter.Measurements())
	}
	meter.SampleN(a, a+128, 5)
	if meter.Measurements() != 8 {
		t.Errorf("measurements = %d, want 8", meter.Measurements())
	}
	meter.SetThreshold(1)
	meter.IsConflictOnce(a, a+128)
	if meter.Measurements() != 9 {
		t.Errorf("measurements = %d, want 9", meter.Measurements())
	}
}

// TestDriftOKDetectsShift: sentinels flag a manually shifted threshold.
func TestDriftOKDetectsShift(t *testing.T) {
	m := no1(t)
	meter, _ := NewMeter(m, 1200, 3)
	cal, err := meter.Calibrate(rand.New(rand.NewSource(3)), 1024)
	if err != nil {
		t.Fatal(err)
	}
	if !meter.DriftOK() {
		t.Fatal("fresh calibration reported drifted")
	}
	// Simulate a stale threshold: move it below the low mode — now the
	// low sentinel classifies as conflict.
	meter.SetThreshold(cal.LowCenter - 20)
	if meter.DriftOK() {
		t.Error("grossly wrong threshold not detected")
	}
	// And above the high mode.
	meter.SetThreshold(cal.HighCenter + 20)
	if meter.DriftOK() {
		t.Error("threshold above the conflict mode not detected")
	}
}

func TestDriftOKWithoutSentinels(t *testing.T) {
	m := no1(t)
	meter, _ := NewMeter(m, 600, 1)
	if !meter.DriftOK() {
		t.Error("meter without sentinels must report OK")
	}
}

func TestTwoMeansDegenerate(t *testing.T) {
	if _, _, _, ok := twoMeans([]float64{1, 2}); ok {
		t.Error("too few samples accepted")
	}
	same := make([]float64, 50)
	for i := range same {
		same[i] = 7
	}
	if _, _, _, ok := twoMeans(same); ok {
		t.Error("constant samples accepted")
	}
}

func TestTwoMeansBimodal(t *testing.T) {
	var vals []float64
	for i := 0; i < 900; i++ {
		vals = append(vals, 300+float64(i%10)/10)
	}
	for i := 0; i < 100; i++ {
		vals = append(vals, 340+float64(i%10)/10)
	}
	lo, hi, frac, ok := twoMeans(vals)
	if !ok {
		t.Fatal("bimodal data rejected")
	}
	if math.Abs(lo-300.45) > 1 || math.Abs(hi-340.45) > 1 {
		t.Errorf("centers %.1f / %.1f", lo, hi)
	}
	if math.Abs(frac-0.1) > 0.02 {
		t.Errorf("high fraction %.3f, want 0.1", frac)
	}
}

func TestCalibrateTooFewPages(t *testing.T) {
	// A machine pool always has pages; exercise the sample floor path
	// instead: tiny sample counts are raised to a workable minimum.
	m := no1(t)
	meter, _ := NewMeter(m, 1200, 1)
	if _, err := meter.Calibrate(rand.New(rand.NewSource(4)), 1); err != nil {
		t.Fatalf("minimum sample floor failed: %v", err)
	}
}
