// Noise models: composable, deterministic transforms over recorded
// traces, for stressing the Meter's SBDR decisions with controlled
// degradations of the timing channel.

package trace

import (
	"fmt"
	"math/rand"
	"strings"

	"dramdig/internal/timing"
)

// Noise transforms a sample stream. Implementations must be
// deterministic given the rng and must not reorder or drop samples —
// replay relies on positions (strict) and per-key counts (keyed).
type Noise interface {
	// Name renders the model and its parameters for provenance notes.
	Name() string
	// Transform returns the perturbed samples (in place or fresh).
	Transform(rng *rand.Rand, samples []Sample) []Sample
}

// Perturb applies the models in order, each with an independent rng
// derived from the seed, and returns a new trace whose header Note
// records the applied chain. The input trace is not modified.
func Perturb(t *Trace, seed int64, models ...Noise) *Trace {
	out := &Trace{Header: t.Header}
	out.Samples = append([]Sample(nil), t.Samples...)
	names := make([]string, 0, len(models))
	for i, m := range models {
		rng := rand.New(rand.NewSource(seed + int64(i)*0x9e37))
		out.Samples = m.Transform(rng, out.Samples)
		names = append(names, m.Name())
	}
	note := "perturbed: " + strings.Join(names, " + ")
	if t.Header.Note != "" {
		note = t.Header.Note + "; " + note
	}
	out.Header.Note = note
	return out
}

// Jitter adds zero-mean Gaussian noise to every latency — the drift-free
// measurement noise floor of a busier host.
type Jitter struct {
	// SigmaNs is the standard deviation of the added noise.
	SigmaNs float64
}

// Name renders the model.
func (j Jitter) Name() string { return fmt.Sprintf("jitter(σ=%gns)", j.SigmaNs) }

// Transform perturbs the samples.
func (j Jitter) Transform(rng *rand.Rand, samples []Sample) []Sample {
	for i := range samples {
		samples[i].LatencyNs += rng.NormFloat64() * j.SigmaNs
	}
	return samples
}

// Outliers injects latency spike bursts: with probability Prob a burst
// starts and the next Burst samples each gain AmpNs (± 10% Gaussian),
// modelling interrupts, SMM excursions and refresh storms that inflate
// whole measurement stretches.
type Outliers struct {
	// Prob is the per-sample burst start probability.
	Prob float64
	// AmpNs is the spike amplitude.
	AmpNs float64
	// Burst is the burst length in samples (default 1).
	Burst int
}

// Name renders the model.
func (o Outliers) Name() string {
	return fmt.Sprintf("outliers(p=%g,amp=%gns,burst=%d)", o.Prob, o.AmpNs, o.burst())
}

func (o Outliers) burst() int {
	if o.Burst < 1 {
		return 1
	}
	return o.Burst
}

// Transform perturbs the samples.
func (o Outliers) Transform(rng *rand.Rand, samples []Sample) []Sample {
	remaining := 0
	for i := range samples {
		if remaining == 0 && rng.Float64() < o.Prob {
			remaining = o.burst()
		}
		if remaining > 0 {
			samples[i].LatencyNs += o.AmpNs * (1 + 0.1*rng.NormFloat64())
			remaining--
		}
	}
	return samples
}

// Squeeze contracts the latency distribution toward the midpoint of its
// two clusters, shrinking the conflict/no-conflict separation by Factor:
// 0 collapses the channel entirely, 1 is a no-op, and values above 1 are
// accepted as the inverse stress (amplified separation). Negative
// factors would mirror every latency around the midpoint — meaningless
// as a noise model — and are clamped to 0. It attacks exactly the
// margin the Meter's threshold lives on.
type Squeeze struct {
	// Factor scales the distance of every latency from the cluster
	// midpoint (clamped to >= 0).
	Factor float64
}

// Name renders the model.
func (s Squeeze) Name() string { return fmt.Sprintf("squeeze(×%g)", s.Factor) }

// Transform perturbs the samples. A trace whose latencies do not
// separate into two clusters is returned unchanged (there is no
// threshold region to squeeze).
func (s Squeeze) Transform(rng *rand.Rand, samples []Sample) []Sample {
	vals := make([]float64, len(samples))
	for i, sm := range samples {
		vals[i] = sm.LatencyNs
	}
	lo, hi, _, ok := timing.TwoMeans(vals)
	if !ok {
		return samples
	}
	factor := s.Factor
	if factor < 0 {
		factor = 0
	}
	mid := (lo + hi) / 2
	for i := range samples {
		samples[i].LatencyNs = mid + (samples[i].LatencyNs-mid)*factor
	}
	return samples
}
