// Recorder: a timing.Target wrapper that captures every MeasurePair
// call into a trace stream while forwarding to the real target.

package trace

import (
	"sync"

	"dramdig/internal/addr"
	"dramdig/internal/alloc"
	"dramdig/internal/sysinfo"
	"dramdig/internal/timing"
)

// Recorder wraps a timing.Target and appends one Sample per MeasurePair
// call to a Writer. Everything else forwards untouched, so a tool
// running over a Recorder behaves exactly as it would over the bare
// target. Safe for concurrent use (one campaign job per recorder is the
// norm, but nothing breaks if a tool measures from several goroutines).
type Recorder struct {
	target timing.Target
	mu     sync.Mutex
	w      *Writer
	err    error
}

var _ timing.Target = (*Recorder)(nil)

// NewRecorder wraps the target; samples stream into w. The caller
// closes w (or the recorder, via Close) when the run finishes.
func NewRecorder(target timing.Target, w *Writer) *Recorder {
	return &Recorder{target: target, w: w}
}

// MeasurePair forwards the measurement and records it.
func (r *Recorder) MeasurePair(a, b addr.Phys, rounds int) float64 {
	before := r.target.ClockNs()
	v := r.target.MeasurePair(a, b, rounds)
	elapsed := r.target.ClockNs() - before
	r.mu.Lock()
	if r.err == nil {
		r.err = r.w.Append(Sample{A: a, B: b, Rounds: rounds, LatencyNs: v, ElapsedNs: elapsed})
	}
	r.mu.Unlock()
	return v
}

// SysInfo forwards to the wrapped target.
func (r *Recorder) SysInfo() sysinfo.Info { return r.target.SysInfo() }

// Pool forwards to the wrapped target.
func (r *Recorder) Pool() *alloc.Pool { return r.target.Pool() }

// ClockNs forwards to the wrapped target.
func (r *Recorder) ClockNs() float64 { return r.target.ClockNs() }

// AdvanceClock forwards to the wrapped target.
func (r *Recorder) AdvanceClock(ns float64) { r.target.AdvanceClock(ns) }

// Samples returns the number of recorded measurements.
func (r *Recorder) Samples() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.w.Count()
}

// Err returns the first write failure; recording stops (but measurement
// forwarding continues) after one.
func (r *Recorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Close flushes and closes the underlying writer, reporting the first
// of any recording or close error.
func (r *Recorder) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	cerr := r.w.Close()
	if r.err != nil {
		return r.err
	}
	return cerr
}
