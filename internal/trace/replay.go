// Replayer: a timing.Target that re-serves recorded samples, so any
// tool consuming the timing channel runs offline — no memory controller,
// no DRAM device, no simulator at all behind the interface.

package trace

import (
	"fmt"

	"dramdig/internal/addr"
	"dramdig/internal/alloc"
	"dramdig/internal/sysinfo"
	"dramdig/internal/timing"
)

// Mode selects how a Replayer matches incoming measurements to recorded
// samples.
type Mode int

const (
	// Strict serves samples in recorded order and requires every call
	// to match the recorded (a, b, rounds) exactly. Replaying the
	// recording tool with the recorded seed is bit-identical; any
	// divergence is an error.
	Strict Mode = iota
	// Keyed serves samples by (pair, rounds) lookup, order-independent:
	// each key's recordings are consumed FIFO, and a key measured more
	// often than it was recorded re-serves its last value (counted in
	// Reused). Only a pair that was never recorded is an error.
	Keyed
)

func (m Mode) String() string {
	switch m {
	case Strict:
		return "strict"
	case Keyed:
		return "keyed"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ParseMode parses "strict" or "keyed".
func ParseMode(s string) (Mode, error) {
	switch s {
	case "strict":
		return Strict, nil
	case "keyed":
		return Keyed, nil
	default:
		return 0, fmt.Errorf("trace: unknown replay mode %q (want strict or keyed)", s)
	}
}

// DivergenceError reports a measurement the trace cannot serve: the
// replayed tool asked something the recorded run did not.
type DivergenceError struct {
	// Call is the index of the diverging MeasurePair call.
	Call int
	// A, B, Rounds are what the tool asked for.
	A, B   addr.Phys
	Rounds int
	// Want is the recorded sample at that position (strict mode only;
	// zero Sample in keyed mode or past the end of the trace).
	Want Sample
	// Reason classifies the failure.
	Reason string
}

func (e *DivergenceError) Error() string {
	if e.Reason == "exhausted" {
		return fmt.Sprintf("trace: replay diverged at call %d: trace exhausted (tool measured %x,%x rounds %d beyond the recording)",
			e.Call, uint64(e.A), uint64(e.B), e.Rounds)
	}
	if e.Reason == "unknown pair" {
		return fmt.Sprintf("trace: replay diverged at call %d: pair %x,%x rounds %d was never recorded",
			e.Call, uint64(e.A), uint64(e.B), e.Rounds)
	}
	return fmt.Sprintf("trace: replay diverged at call %d: tool measured %x,%x rounds %d, recording has %x,%x rounds %d",
		e.Call, uint64(e.A), uint64(e.B), e.Rounds, uint64(e.Want.A), uint64(e.Want.B), e.Want.Rounds)
}

// pairKey is the keyed-mode lookup key; the pair is stored unordered
// because the alternating access loop is symmetric.
type pairKey struct {
	lo, hi addr.Phys
	rounds int
}

func keyOf(a, b addr.Phys, rounds int) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{lo: a, hi: b, rounds: rounds}
}

// Replayer implements timing.Target over a recorded trace.
type Replayer struct {
	info    sysinfo.Info
	pool    *alloc.Pool
	mode    Mode
	samples []Sample

	pos    int // strict cursor
	byKey  map[pairKey][]int
	last   map[pairKey]int // last served index per key, for reuse
	clock  float64
	calls  int
	reused int
	err    error
}

var _ timing.Target = (*Replayer)(nil)

// NewReplayer rebuilds the recorded machine's surface from the trace
// header and returns a replay target. The returned Replayer is fully
// offline: it holds no simulator, so every latency a tool observes comes
// from the trace.
func NewReplayer(t *Trace, mode Mode) (*Replayer, error) {
	info, pool, err := t.Header.Surface()
	if err != nil {
		return nil, err
	}
	return NewReplayerTarget(info, pool, t.Samples, mode), nil
}

// NewReplayerTarget builds a replay target from an explicit surface —
// for callers that already hold the live machine (regression fixtures
// replaying against machine.Surface output, tests).
func NewReplayerTarget(info sysinfo.Info, pool *alloc.Pool, samples []Sample, mode Mode) *Replayer {
	r := &Replayer{info: info, pool: pool, mode: mode, samples: samples}
	if mode == Keyed {
		r.byKey = make(map[pairKey][]int, len(samples))
		r.last = make(map[pairKey]int)
		for i, s := range samples {
			k := keyOf(s.A, s.B, s.Rounds)
			r.byKey[k] = append(r.byKey[k], i)
		}
	}
	return r
}

// MeasurePair serves the next recorded latency. The timing.Target
// interface cannot return an error, so on divergence the replayer
// records the first DivergenceError (see Err), returns 0 and keeps
// accepting calls; callers must check Err after the run.
func (r *Replayer) MeasurePair(a, b addr.Phys, rounds int) float64 {
	call := r.calls
	r.calls++
	switch r.mode {
	case Strict:
		if r.pos >= len(r.samples) {
			r.fail(&DivergenceError{Call: call, A: a, B: b, Rounds: rounds, Reason: "exhausted"})
			return 0
		}
		s := r.samples[r.pos]
		if s.A != a || s.B != b || s.Rounds != rounds {
			r.fail(&DivergenceError{Call: call, A: a, B: b, Rounds: rounds, Want: s, Reason: "mismatch"})
			return 0
		}
		r.pos++
		r.clock += s.ElapsedNs
		return s.LatencyNs
	default: // Keyed
		k := keyOf(a, b, rounds)
		if idxs := r.byKey[k]; len(idxs) > 0 {
			i := idxs[0]
			r.byKey[k] = idxs[1:]
			r.last[k] = i
			s := r.samples[i]
			r.clock += s.ElapsedNs
			return s.LatencyNs
		}
		if i, ok := r.last[k]; ok {
			r.reused++
			s := r.samples[i]
			r.clock += s.ElapsedNs
			return s.LatencyNs
		}
		r.fail(&DivergenceError{Call: call, A: a, B: b, Rounds: rounds, Reason: "unknown pair"})
		return 0
	}
}

func (r *Replayer) fail(err *DivergenceError) {
	if r.err == nil {
		r.err = err
	}
}

// SysInfo returns the rebuilt system information.
func (r *Replayer) SysInfo() sysinfo.Info { return r.info }

// Pool returns the rebuilt allocation pool.
func (r *Replayer) Pool() *alloc.Pool { return r.pool }

// ClockNs returns the replayed simulated clock: the sum of served
// samples' elapsed times plus tool-charged overhead.
func (r *Replayer) ClockNs() float64 { return r.clock }

// AdvanceClock charges tool-side overhead, exactly like a live machine.
func (r *Replayer) AdvanceClock(ns float64) { r.clock += ns }

// Calls returns the number of MeasurePair calls served.
func (r *Replayer) Calls() int { return r.calls }

// Reused returns how many keyed-mode calls re-served an exhausted key's
// last value (always 0 in strict mode).
func (r *Replayer) Reused() int { return r.reused }

// Remaining returns the number of recorded samples not yet served
// (strict mode; keyed mode counts across all keys).
func (r *Replayer) Remaining() int {
	if r.mode == Strict {
		return len(r.samples) - r.pos
	}
	n := 0
	for _, idxs := range r.byKey {
		n += len(idxs)
	}
	return n
}

// Err returns the first divergence, or nil for a faithful replay so far.
func (r *Replayer) Err() error { return r.err }
