package trace

import (
	"bytes"
	"errors"
	"testing"

	"dramdig/internal/core"
	"dramdig/internal/machine"
)

// recordRun runs the full DRAMDig pipeline on a live machine with a
// recorder in front and returns the decoded trace plus the recovered
// mapping fingerprint.
func recordRun(t *testing.T, machineNo int, machineSeed, toolSeed int64) (*Trace, string) {
	t.Helper()
	m, err := machine.NewByNo(machineNo, machineSeed)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, HeaderFor(m, "dramdig", toolSeed))
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(m, w)
	tool, err := core.New(rec, core.Config{Seed: toolSeed})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tool.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if !res.Mapping.EquivalentTo(m.Truth()) {
		t.Fatal("recorded run did not recover the true mapping")
	}
	tr, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Samples) == 0 {
		t.Fatal("recorded no samples")
	}
	if uint64(len(tr.Samples)) != res.Measurements {
		t.Fatalf("recorded %d samples, tool reports %d measurements", len(tr.Samples), res.Measurements)
	}
	return tr, res.Mapping.Fingerprint()
}

// replayRun runs DRAMDig over a replayer built purely from the trace —
// no simulator anywhere — and returns the fingerprint and the replayer.
func replayRun(t *testing.T, tr *Trace, mode Mode) (string, *Replayer) {
	t.Helper()
	rep, err := NewReplayer(tr, mode)
	if err != nil {
		t.Fatal(err)
	}
	tool, err := core.New(rep, core.Config{Seed: tr.Header.ToolSeed})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tool.Run()
	if err != nil {
		t.Fatalf("replay (%s) failed: %v (replayer: %v)", mode, err, rep.Err())
	}
	return res.Mapping.Fingerprint(), rep
}

// TestRecordReplayIdentical is the subsystem's acceptance property: a
// recorded campaign job replays bit-identically offline, in both modes,
// with zero simulator calls (the Replayer holds no simulator at all).
func TestRecordReplayIdentical(t *testing.T) {
	tr, wantFP := recordRun(t, 4, 42, 7)

	for _, mode := range []Mode{Strict, Keyed} {
		fp, rep := replayRun(t, tr, mode)
		if err := rep.Err(); err != nil {
			t.Fatalf("%s replay diverged: %v", mode, err)
		}
		if fp != wantFP {
			t.Fatalf("%s replay fingerprint %s != recorded %s", mode, fp, wantFP)
		}
		if rep.Calls() != len(tr.Samples) {
			t.Fatalf("%s replay served %d calls, recording has %d", mode, rep.Calls(), len(tr.Samples))
		}
	}
}

// TestStrictReplayWrongSeedDiverges: strict mode exists to catch exactly
// this — a different tool seed asks different questions.
func TestStrictReplayWrongSeedDiverges(t *testing.T) {
	tr, _ := recordRun(t, 4, 42, 7)
	rep, err := NewReplayer(tr, Strict)
	if err != nil {
		t.Fatal(err)
	}
	tool, err := core.New(rep, core.Config{Seed: tr.Header.ToolSeed + 1})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = tool.Run() // outcome irrelevant; the replayer must notice
	if rep.Err() == nil {
		t.Fatal("strict replay with a different seed reported no divergence")
	}
}

// TestPerturbedReplay exercises the noise models end to end against the
// Meter's SBDR decisions:
//
//   - mild Gaussian jitter leaves enough decision margin that the
//     pipeline recovers the identical mapping from the perturbed trace;
//   - a threshold-region squeeze collapses the cluster separation, but
//     because the transform is monotone the Meter re-calibrates a
//     squeezed threshold and every decision still lands the same way;
//   - latency outlier bursts flip individual partition decisions, so the
//     replayed tool either absorbs them or walks off the recorded query
//     stream — in which case the replayer must say so with a clear
//     DivergenceError, never a silent wrong answer.
func TestPerturbedReplay(t *testing.T) {
	tr, wantFP := recordRun(t, 4, 42, 7)
	base := ComputeStats(tr.Samples)
	if !base.Separated {
		t.Fatal("recorded trace has no cluster separation")
	}

	// Jitter: identical recovery (σ well below the ~1.5 ns flip point of
	// this machine/seed, found empirically).
	jittered := Perturb(tr, 99, Jitter{SigmaNs: 0.2})
	if again := ComputeStats(tr.Samples); again != base {
		t.Fatal("Perturb modified the input trace")
	}
	fp, rep := replayRun(t, jittered, Keyed)
	if err := rep.Err(); err != nil {
		t.Fatalf("jittered replay diverged: %v", err)
	}
	if fp != wantFP {
		t.Fatalf("jittered replay fingerprint %s != recorded %s", fp, wantFP)
	}

	// Squeeze: the channel loses most of its separation, yet the
	// re-calibrated threshold squeezes along with it.
	squeezed := Perturb(tr, 99, Squeeze{Factor: 0.25})
	ss := ComputeStats(squeezed.Samples)
	if ss.Separated && ss.Separation() > base.Separation()*0.5 {
		t.Fatalf("squeeze left separation %.1f of %.1f", ss.Separation(), base.Separation())
	}
	fp, rep = replayRun(t, squeezed, Keyed)
	if err := rep.Err(); err != nil {
		t.Fatalf("squeezed replay diverged: %v", err)
	}
	if fp != wantFP {
		t.Fatalf("squeezed replay fingerprint %s != recorded %s", fp, wantFP)
	}

	// Outlier bursts: +150 ns lifts any low-cluster sample over the
	// threshold, so flipped decisions are expected; the contract is a
	// clean outcome either way.
	noisy := Perturb(tr, 99, Outliers{Prob: 0.002, AmpNs: 150, Burst: 2})
	if ns := ComputeStats(noisy.Samples); ns.MaxNs <= base.MaxNs {
		t.Fatalf("outlier bursts did not raise the max latency (%.1f vs %.1f)", ns.MaxNs, base.MaxNs)
	}
	outRep, err := NewReplayer(noisy, Keyed)
	if err != nil {
		t.Fatal(err)
	}
	tool, err := core.New(outRep, core.Config{Seed: tr.Header.ToolSeed})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tool.Run()
	if outRep.Err() != nil {
		var derr *DivergenceError
		if !errors.As(outRep.Err(), &derr) {
			t.Fatalf("divergence is not a DivergenceError: %v", outRep.Err())
		}
	} else if err != nil {
		// The noise honestly broke the pipeline on-stream (e.g. coarse
		// detection sees no row bits) — the robustness study working.
		t.Logf("outlier replay: pipeline failed under noise: %v", err)
	} else {
		t.Logf("outlier replay absorbed the bursts (mapping %s)", res.Mapping)
	}

	if squeezed.Header.Note == "" || noisy.Header.Note == "" || jittered.Header.Note == "" {
		t.Fatal("perturbed traces carry no provenance note")
	}
}

// TestPerturbDeterministic: equal seeds must produce byte-equal noise.
func TestPerturbDeterministic(t *testing.T) {
	tr, _ := recordRun(t, 4, 42, 7)
	a := Perturb(tr, 5, Jitter{SigmaNs: 2}, Outliers{Prob: 0.01, AmpNs: 90})
	b := Perturb(tr, 5, Jitter{SigmaNs: 2}, Outliers{Prob: 0.01, AmpNs: 90})
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs between equal-seed perturbations", i)
		}
	}
	c := Perturb(tr, 6, Jitter{SigmaNs: 2})
	same := true
	for i := range a.Samples {
		if c.Samples[i].LatencyNs != tr.Samples[i].LatencyNs {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different-seed perturbation changed nothing")
	}
}

func TestStatsAndHistogram(t *testing.T) {
	tr, _ := recordRun(t, 4, 42, 7)
	st := ComputeStats(tr.Samples)
	if st.Samples != len(tr.Samples) || !st.Separated {
		t.Fatalf("bad stats: %+v", st)
	}
	if st.Threshold() <= st.LowCenter || st.Threshold() >= st.HighCenter {
		t.Fatalf("threshold %.1f outside (%.1f, %.1f)", st.Threshold(), st.LowCenter, st.HighCenter)
	}
	if st.SimSeconds <= 0 {
		t.Fatalf("sim seconds %v", st.SimSeconds)
	}
	h, hst, err := Histogram(tr.Samples, 40)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != len(tr.Samples) {
		t.Fatalf("histogram holds %d of %d samples", h.Total(), len(tr.Samples))
	}
	out := h.Render(hst.Threshold(), 60)
	if out == "" {
		t.Fatal("empty render")
	}
}
