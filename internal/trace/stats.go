// Trace diagnostics: distribution statistics and a histogram view of a
// recorded timing channel, using the same two-cluster model the Meter
// calibrates with.

package trace

import (
	"fmt"

	"dramdig/internal/timing"
)

// Stats characterizes a trace's latency distribution.
type Stats struct {
	// Samples is the record count; Calls distinguishes nothing here (one
	// record per call) but SimSeconds sums the recorded elapsed time.
	Samples    int
	SimSeconds float64
	// MinNs/MeanNs/MaxNs summarize the latencies.
	MinNs, MeanNs, MaxNs float64
	// LowCenter/HighCenter/HighFrac are the fitted two-cluster model;
	// Separated reports whether the fit found two clusters at all.
	LowCenter, HighCenter, HighFrac float64
	Separated                       bool
}

// Threshold returns the midpoint decision boundary of the fitted
// clusters (0 when the trace is not separated).
func (s Stats) Threshold() float64 {
	if !s.Separated {
		return 0
	}
	return (s.LowCenter + s.HighCenter) / 2
}

// Separation returns the cluster-center distance.
func (s Stats) Separation() float64 { return s.HighCenter - s.LowCenter }

// String renders the statistics.
func (s Stats) String() string {
	if !s.Separated {
		return fmt.Sprintf("%d samples, %.1f sim s, latency %.1f–%.1f ns (no cluster separation)",
			s.Samples, s.SimSeconds, s.MinNs, s.MaxNs)
	}
	return fmt.Sprintf("%d samples, %.1f sim s, latency %.1f–%.1f ns; clusters %.1f / %.1f ns (sep %.1f, %.1f%% high)",
		s.Samples, s.SimSeconds, s.MinNs, s.MaxNs,
		s.LowCenter, s.HighCenter, s.Separation(), s.HighFrac*100)
}

// ComputeStats fits the distribution model to a sample stream.
func ComputeStats(samples []Sample) Stats {
	st := Stats{Samples: len(samples)}
	if len(samples) == 0 {
		return st
	}
	vals := make([]float64, len(samples))
	st.MinNs, st.MaxNs = samples[0].LatencyNs, samples[0].LatencyNs
	var sum float64
	for i, s := range samples {
		vals[i] = s.LatencyNs
		sum += s.LatencyNs
		if s.LatencyNs < st.MinNs {
			st.MinNs = s.LatencyNs
		}
		if s.LatencyNs > st.MaxNs {
			st.MaxNs = s.LatencyNs
		}
		st.SimSeconds += s.ElapsedNs / 1e9
	}
	st.MeanNs = sum / float64(len(samples))
	st.LowCenter, st.HighCenter, st.HighFrac, st.Separated = timing.TwoMeans(vals)
	return st
}

// Histogram buckets the trace's latencies into a timing.Histogram,
// labelling samples above the fitted threshold as conflicts. Returns an
// error when the trace is empty or degenerate.
func Histogram(samples []Sample, buckets int) (*timing.Histogram, Stats, error) {
	st := ComputeStats(samples)
	if st.Samples == 0 {
		return nil, st, fmt.Errorf("trace: no samples to histogram")
	}
	lo, hi := st.MinNs, st.MaxNs
	if st.Separated {
		lo, hi = st.LowCenter-10, st.HighCenter+10
	}
	if hi <= lo {
		hi = lo + 1
	}
	h, err := timing.NewHistogram(lo, hi, buckets)
	if err != nil {
		return nil, st, err
	}
	thr := st.Threshold()
	for _, s := range samples {
		h.Add(s.LatencyNs, st.Separated && s.LatencyNs >= thr)
	}
	return h, st, nil
}
