// Package trace captures, persists and replays the timing channel every
// reverse-engineering tool in this repository consumes. A Recorder wraps
// a timing.Target and writes each MeasurePair call (addresses, rounds,
// latency, elapsed simulated time) into a compact length-prefixed binary
// stream behind a versioned header carrying the machine fingerprint; a
// Replayer serves a recorded stream back through the timing.Target
// interface so any tool runs bit-identically offline, with zero
// simulator involvement; and composable noise models (Gaussian jitter,
// latency outlier bursts, threshold-region squeeze) perturb recorded
// traces to stress the Meter's SBDR decisions.
//
// Wire format (little-endian):
//
//	magic "DRTR" | uint16 version | uint32 header length | header JSON
//	then per sample: uvarint record length | record payload
//	record payload: uvarint A | uvarint B | uvarint rounds
//	                | 8-byte latency bits | 8-byte elapsed bits
//
// Records are length-prefixed so future versions can append fields
// without breaking old readers (unknown trailing bytes are skipped).
package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"dramdig/internal/addr"
	"dramdig/internal/alloc"
	"dramdig/internal/machine"
	"dramdig/internal/specs"
	"dramdig/internal/sysinfo"
)

// Version is the current wire-format version.
const Version = 1

// magic identifies a trace stream.
var magic = [4]byte{'D', 'R', 'T', 'R'}

// maxHeaderBytes bounds the header a reader will accept; anything larger
// is corrupt or hostile.
const maxHeaderBytes = 1 << 20

// MachineID identifies the recorded machine well enough to rebuild its
// tool-visible surface (system information and allocation layout)
// offline. It deliberately carries no ground-truth mapping and no
// vulnerability profile: a shared trace must not leak the answer.
type MachineID struct {
	// No is the paper's setting number (0 for custom machines).
	No int `json:"no"`
	// Name labels the machine ("No.3", "custom").
	Name string `json:"name"`
	// Fingerprint is the full machine-definition content hash
	// (machine.Definition.Fingerprint) — the key the result store and
	// daemon address traces by.
	Fingerprint string `json:"fingerprint"`
	// Seed is the machine seed: it determines the allocation layout the
	// recorded addresses live in.
	Seed int64 `json:"seed"`
	// The declared hardware, mirroring machine.Definition.
	Microarch string             `json:"microarch,omitempty"`
	CPU       string             `json:"cpu,omitempty"`
	Mobile    bool               `json:"mobile,omitempty"`
	Standard  specs.Standard     `json:"standard"`
	MemBytes  uint64             `json:"mem_bytes"`
	Config    sysinfo.DIMMConfig `json:"config"`
	Chip      string             `json:"chip"`
}

// Header is the versioned trace preamble.
type Header struct {
	// Version is the wire-format version the trace was written with.
	Version int `json:"version"`
	// Machine identifies the recorded machine.
	Machine MachineID `json:"machine"`
	// Tool names the recording tool ("dramdig", "drama", ...).
	Tool string `json:"tool,omitempty"`
	// ToolSeed is the tool seed of the recorded run; replaying with the
	// same seed reproduces the exact query sequence (strict mode
	// requires it).
	ToolSeed int64 `json:"tool_seed"`
	// CreatedUnix is the recording wall time.
	CreatedUnix int64 `json:"created_unix,omitempty"`
	// Note is free-form provenance ("perturbed: jitter(2)").
	Note string `json:"note,omitempty"`
}

// HeaderFor builds a header describing a machine and the tool about to
// run on it.
func HeaderFor(m *machine.Machine, tool string, toolSeed int64) Header {
	def := m.Def()
	return Header{
		Version: Version,
		Machine: MachineID{
			No:          def.No,
			Name:        def.Name,
			Fingerprint: def.Fingerprint(),
			Seed:        m.Seed(),
			Microarch:   def.Microarch,
			CPU:         def.CPU,
			Mobile:      def.Mobile,
			Standard:    def.Standard,
			MemBytes:    def.MemBytes,
			Config:      def.Config,
			Chip:        def.ChipPart,
		},
		Tool:     tool,
		ToolSeed: toolSeed,
	}
}

// Surface rebuilds the recorded machine's tool-visible surface: the
// system information and the byte-identical allocation pool. Paper
// machines (No 1–9) rebuild from the registry so later registry fixes
// win; custom machines rebuild from the declared hardware in the header.
func (h Header) Surface() (sysinfo.Info, *alloc.Pool, error) {
	def, err := h.definition()
	if err != nil {
		return sysinfo.Info{}, nil, err
	}
	return machine.Surface(def, h.Machine.Seed)
}

func (h Header) definition() (machine.Definition, error) {
	if h.Machine.No != 0 {
		def, err := machine.ByNo(h.Machine.No)
		if err != nil {
			return machine.Definition{}, fmt.Errorf("trace: %w", err)
		}
		// The registry may have been fixed since the recording; if the
		// definition changed, the recorded addresses belong to a pool
		// this registry can no longer rebuild — fail clearly instead of
		// dying later in cryptic divergence errors. (Custom machines
		// cannot be checked this way: their header deliberately omits
		// the fingerprinted ground-truth fields.)
		if fp := def.Fingerprint(); h.Machine.Fingerprint != "" && fp != h.Machine.Fingerprint {
			return machine.Definition{}, fmt.Errorf(
				"trace: registry definition of %s no longer matches the recording (fingerprint %.12s… != recorded %.12s…)",
				def.Name, fp, h.Machine.Fingerprint)
		}
		return def, nil
	}
	id := h.Machine
	return machine.Definition{
		Name:      id.Name,
		Microarch: id.Microarch,
		CPU:       id.CPU,
		Mobile:    id.Mobile,
		Standard:  id.Standard,
		MemBytes:  id.MemBytes,
		Config:    id.Config,
		ChipPart:  id.Chip,
	}, nil
}

// Sample is one recorded MeasurePair call.
type Sample struct {
	// A and B are the measured pair.
	A, B addr.Phys
	// Rounds is the alternating-access round count of the call.
	Rounds int
	// LatencyNs is the returned mean per-access latency.
	LatencyNs float64
	// ElapsedNs is the simulated time the call consumed (the clock
	// delta); replay re-charges it so offline runs report the same
	// simulated cost.
	ElapsedNs float64
}

// Trace is a fully decoded trace.
type Trace struct {
	Header  Header
	Samples []Sample
}

// --- streaming writer --------------------------------------------------

// Writer streams samples into an underlying io.Writer. Not safe for
// concurrent use; the Recorder serializes its calls.
type Writer struct {
	bw    *bufio.Writer
	under io.Writer
	n     int
	buf   []byte
}

// NewWriter writes the magic and header and returns a streaming writer.
func NewWriter(w io.Writer, h Header) (*Writer, error) {
	if h.Version == 0 {
		h.Version = Version
	}
	if h.Version != Version {
		return nil, fmt.Errorf("trace: cannot write version %d (supported: %d)", h.Version, Version)
	}
	hdr, err := json.Marshal(h)
	if err != nil {
		return nil, fmt.Errorf("trace: encode header: %w", err)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	var pre [6]byte
	binary.LittleEndian.PutUint16(pre[0:2], uint16(h.Version))
	binary.LittleEndian.PutUint32(pre[2:6], uint32(len(hdr)))
	if _, err := bw.Write(pre[:]); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if _, err := bw.Write(hdr); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return &Writer{bw: bw, under: w, buf: make([]byte, 0, 64)}, nil
}

// Append writes one sample.
func (w *Writer) Append(s Sample) error {
	if s.Rounds < 0 {
		return fmt.Errorf("trace: negative rounds %d", s.Rounds)
	}
	b := w.buf[:0]
	b = binary.AppendUvarint(b, uint64(s.A))
	b = binary.AppendUvarint(b, uint64(s.B))
	b = binary.AppendUvarint(b, uint64(s.Rounds))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.LatencyNs))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.ElapsedNs))
	w.buf = b
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(b)))
	if _, err := w.bw.Write(lenBuf[:n]); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if _, err := w.bw.Write(b); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	w.n++
	return nil
}

// Count returns the samples appended so far.
func (w *Writer) Count() int { return w.n }

// Close flushes buffered samples and closes the underlying writer when
// it is an io.Closer.
func (w *Writer) Close() error {
	err := w.bw.Flush()
	if c, ok := w.under.(io.Closer); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// --- streaming reader --------------------------------------------------

// Reader streams samples out of an encoded trace.
type Reader struct {
	br  *bufio.Reader
	h   Header
	buf []byte
}

// NewReader parses the magic and header and returns a streaming reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var pre [10]byte
	if _, err := io.ReadFull(br, pre[:]); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if [4]byte(pre[0:4]) != magic {
		return nil, fmt.Errorf("trace: bad magic %q (not a trace file)", pre[0:4])
	}
	version := int(binary.LittleEndian.Uint16(pre[4:6]))
	if version != Version {
		return nil, fmt.Errorf("trace: unsupported version %d (supported: %d)", version, Version)
	}
	hdrLen := binary.LittleEndian.Uint32(pre[6:10])
	if hdrLen > maxHeaderBytes {
		return nil, fmt.Errorf("trace: header of %d bytes exceeds the %d limit", hdrLen, maxHeaderBytes)
	}
	hdr := make([]byte, hdrLen)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	var h Header
	if err := json.Unmarshal(hdr, &h); err != nil {
		return nil, fmt.Errorf("trace: corrupt header: %w", err)
	}
	return &Reader{br: br, h: h}, nil
}

// Header returns the decoded header.
func (r *Reader) Header() Header { return r.h }

// Next returns the next sample, or io.EOF at a clean end of stream.
func (r *Reader) Next() (Sample, error) {
	recLen, err := binary.ReadUvarint(r.br)
	if err == io.EOF {
		return Sample{}, io.EOF
	}
	if err != nil {
		return Sample{}, fmt.Errorf("trace: corrupt record length: %w", err)
	}
	if recLen > 1<<16 {
		return Sample{}, fmt.Errorf("trace: record of %d bytes is implausible", recLen)
	}
	if cap(r.buf) < int(recLen) {
		r.buf = make([]byte, recLen)
	}
	buf := r.buf[:recLen]
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return Sample{}, fmt.Errorf("trace: truncated record: %w", err)
	}
	var s Sample
	a, n := binary.Uvarint(buf)
	if n <= 0 {
		return Sample{}, fmt.Errorf("trace: corrupt record field A")
	}
	buf = buf[n:]
	b, n := binary.Uvarint(buf)
	if n <= 0 {
		return Sample{}, fmt.Errorf("trace: corrupt record field B")
	}
	buf = buf[n:]
	rounds, n := binary.Uvarint(buf)
	if n <= 0 {
		return Sample{}, fmt.Errorf("trace: corrupt record field rounds")
	}
	buf = buf[n:]
	if len(buf) < 16 {
		return Sample{}, fmt.Errorf("trace: record too short for latency fields")
	}
	s.A, s.B, s.Rounds = addr.Phys(a), addr.Phys(b), int(rounds)
	s.LatencyNs = math.Float64frombits(binary.LittleEndian.Uint64(buf[0:8]))
	s.ElapsedNs = math.Float64frombits(binary.LittleEndian.Uint64(buf[8:16]))
	// Trailing bytes belong to a newer minor revision; skip them.
	return s, nil
}

// --- whole-trace convenience ------------------------------------------

// Encode writes the full trace.
func (t *Trace) Encode(w io.Writer) error {
	tw, err := NewWriter(w, t.Header)
	if err != nil {
		return err
	}
	for _, s := range t.Samples {
		if err := tw.Append(s); err != nil {
			return err
		}
	}
	return tw.bw.Flush()
}

// Decode reads a full trace.
func Decode(r io.Reader) (*Trace, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	t := &Trace{Header: tr.Header()}
	for {
		s, err := tr.Next()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		t.Samples = append(t.Samples, s)
	}
}
