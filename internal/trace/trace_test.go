package trace

import (
	"bytes"
	"errors"
	"io"
	"math"
	"strings"
	"testing"

	"dramdig/internal/addr"
	"dramdig/internal/machine"
)

func sampleHeader(t *testing.T) Header {
	t.Helper()
	m, err := machine.NewByNo(4, 42)
	if err != nil {
		t.Fatal(err)
	}
	return HeaderFor(m, "dramdig", 7)
}

func TestCodecRoundTrip(t *testing.T) {
	h := sampleHeader(t)
	h.Note = "round trip"
	want := &Trace{
		Header: h,
		Samples: []Sample{
			{A: 0x1000, B: 0x2040, Rounds: 1200, LatencyNs: 43.25, ElapsedNs: 103800},
			{A: 0xfff_ffff_f000, B: 0, Rounds: 4, LatencyNs: 71.5, ElapsedNs: 572},
			{A: 1, B: 2, Rounds: 600, LatencyNs: -3.5, ElapsedNs: 0},
			{A: math.MaxUint64 >> 1, B: 0x40, Rounds: 0, LatencyNs: math.Pi, ElapsedNs: 1e12},
		},
	}
	var buf bytes.Buffer
	if err := want.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Header != want.Header {
		t.Fatalf("header mismatch:\n got %+v\nwant %+v", got.Header, want.Header)
	}
	if len(got.Samples) != len(want.Samples) {
		t.Fatalf("got %d samples, want %d", len(got.Samples), len(want.Samples))
	}
	for i := range want.Samples {
		if got.Samples[i] != want.Samples[i] {
			t.Errorf("sample %d: got %+v want %+v", i, got.Samples[i], want.Samples[i])
		}
	}
}

func TestCodecStreaming(t *testing.T) {
	h := sampleHeader(t)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, h)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	for i := 0; i < n; i++ {
		s := Sample{A: addr.Phys(i * 64), B: addr.Phys(i*64 + 4096), Rounds: 600,
			LatencyNs: 40 + float64(i%7), ElapsedNs: float64(i)}
		if err := w.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != n {
		t.Fatalf("Count = %d, want %d", w.Count(), n)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.Header().Machine.Fingerprint != h.Machine.Fingerprint {
		t.Fatalf("header fingerprint lost")
	}
	count := 0
	for {
		s, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if s.Rounds != 600 {
			t.Fatalf("sample %d rounds = %d", count, s.Rounds)
		}
		count++
	}
	if count != n {
		t.Fatalf("read %d samples, want %d", count, n)
	}
}

func TestCodecRejectsCorruption(t *testing.T) {
	h := sampleHeader(t)
	tr := &Trace{Header: h, Samples: []Sample{{A: 1, B: 2, Rounds: 4, LatencyNs: 40}}}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	if _, err := Decode(strings.NewReader("not a trace at all")); err == nil {
		t.Error("bad magic accepted")
	}
	bad := append([]byte(nil), valid...)
	bad[4] = 99 // version
	if _, err := Decode(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("bad version accepted: %v", err)
	}
	if _, err := Decode(bytes.NewReader(valid[:len(valid)-3])); err == nil {
		t.Error("truncated record accepted")
	}
	if _, err := Decode(bytes.NewReader(valid[:8])); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestHeaderSurfaceMatchesMachine(t *testing.T) {
	m, err := machine.NewByNo(4, 999)
	if err != nil {
		t.Fatal(err)
	}
	h := HeaderFor(m, "dramdig", 1)
	info, pool, err := h.Surface()
	if err != nil {
		t.Fatal(err)
	}
	if info != m.SysInfo() {
		t.Fatalf("rebuilt sysinfo differs:\n got %+v\nwant %+v", info, m.SysInfo())
	}
	got, want := pool.Pages(), m.Pool().Pages()
	if len(got) != len(want) {
		t.Fatalf("rebuilt pool has %d pages, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rebuilt pool diverges at page %d: %x vs %x", i, got[i], want[i])
		}
	}
}

func TestHeaderSurfaceCustomMachine(t *testing.T) {
	defs := machine.Settings()
	def := defs[3]
	def.No = 0 // pretend custom: Surface must rebuild from declared fields
	def.Name = "custom-like-4"
	m, err := machine.New(def, 1234)
	if err != nil {
		t.Fatal(err)
	}
	h := HeaderFor(m, "dramdig", 1)
	info, pool, err := h.Surface()
	if err != nil {
		t.Fatal(err)
	}
	if info != m.SysInfo() {
		t.Fatalf("rebuilt sysinfo differs")
	}
	if pool.NumPages() != m.Pool().NumPages() || pool.Pages()[0] != m.Pool().Pages()[0] {
		t.Fatalf("rebuilt pool differs")
	}
}

// TestHeaderSurfaceRejectsRegistryDrift: when the registry definition of
// a paper machine no longer matches what the trace recorded, rebuilding
// the surface must fail clearly instead of producing a wrong pool that
// dies later in cryptic divergence errors.
func TestHeaderSurfaceRejectsRegistryDrift(t *testing.T) {
	h := sampleHeader(t)
	h.Machine.Fingerprint = strings.Repeat("ab", 32) // not No.4's hash
	if _, _, err := h.Surface(); err == nil || !strings.Contains(err.Error(), "no longer matches") {
		t.Fatalf("drifted registry not rejected: %v", err)
	}
}

func TestRecorderForwardsAndCaptures(t *testing.T) {
	m, err := machine.NewByNo(4, 42)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, HeaderFor(m, "test", 0))
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(m, w)

	if rec.SysInfo() != m.SysInfo() {
		t.Fatal("SysInfo not forwarded")
	}
	if rec.Pool() != m.Pool() {
		t.Fatal("Pool not forwarded")
	}
	pages := m.Pool().Pages()
	a, b := pages[0], pages[len(pages)/2]
	before := rec.ClockNs()
	v := rec.MeasurePair(a, b, 64)
	if rec.ClockNs() <= before {
		t.Fatal("clock did not advance through recorder")
	}
	rec.AdvanceClock(100)
	rec.MeasurePair(b, a, 64)
	if rec.Samples() != 2 {
		t.Fatalf("recorded %d samples, want 2", rec.Samples())
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Samples[0]
	if s.A != a || s.B != b || s.Rounds != 64 || s.LatencyNs != v {
		t.Fatalf("captured %+v, want a=%x b=%x rounds=64 latency=%v", s, a, b, v)
	}
	if s.ElapsedNs <= 0 {
		t.Fatalf("captured elapsed %v, want > 0", s.ElapsedNs)
	}
}

func TestReplayerStrictDivergence(t *testing.T) {
	m, _ := machine.NewByNo(4, 42)
	info, pool := m.SysInfo(), m.Pool()
	samples := []Sample{
		{A: 100, B: 200, Rounds: 64, LatencyNs: 40, ElapsedNs: 10},
		{A: 300, B: 400, Rounds: 64, LatencyNs: 70, ElapsedNs: 10},
	}
	r := NewReplayerTarget(info, pool, samples, Strict)
	if v := r.MeasurePair(100, 200, 64); v != 40 {
		t.Fatalf("first sample = %v, want 40", v)
	}
	// Wrong pair: divergence recorded, 0 returned.
	if v := r.MeasurePair(999, 888, 64); v != 0 {
		t.Fatalf("diverged call returned %v, want 0", v)
	}
	var derr *DivergenceError
	if err := r.Err(); err == nil {
		t.Fatal("divergence not reported")
	} else if !errors.As(err, &derr) || derr.Call != 1 || derr.Reason != "mismatch" {
		t.Fatalf("wrong divergence: %v", err)
	}

	// Exhaustion is its own clear error.
	r2 := NewReplayerTarget(info, pool, samples[:1], Strict)
	r2.MeasurePair(100, 200, 64)
	r2.MeasurePair(100, 200, 64)
	if err := r2.Err(); err == nil || !strings.Contains(err.Error(), "exhausted") {
		t.Fatalf("exhaustion not reported: %v", err)
	}
}

func TestReplayerKeyed(t *testing.T) {
	m, _ := machine.NewByNo(4, 42)
	info, pool := m.SysInfo(), m.Pool()
	samples := []Sample{
		{A: 100, B: 200, Rounds: 64, LatencyNs: 40, ElapsedNs: 10},
		{A: 100, B: 200, Rounds: 64, LatencyNs: 42, ElapsedNs: 10},
		{A: 300, B: 400, Rounds: 64, LatencyNs: 70, ElapsedNs: 10},
	}
	r := NewReplayerTarget(info, pool, samples, Keyed)
	// Order-independent, symmetric pair, FIFO within a key.
	if v := r.MeasurePair(400, 300, 64); v != 70 {
		t.Fatalf("keyed lookup = %v, want 70", v)
	}
	if v := r.MeasurePair(100, 200, 64); v != 40 {
		t.Fatalf("keyed FIFO first = %v, want 40", v)
	}
	if v := r.MeasurePair(200, 100, 64); v != 42 {
		t.Fatalf("keyed FIFO second = %v, want 42", v)
	}
	// Exhausted key re-serves its last value.
	if v := r.MeasurePair(100, 200, 64); v != 42 {
		t.Fatalf("exhausted key = %v, want reuse of 42", v)
	}
	if r.Reused() != 1 {
		t.Fatalf("Reused = %d, want 1", r.Reused())
	}
	if r.Err() != nil {
		t.Fatalf("unexpected error: %v", r.Err())
	}
	// A never-recorded pair is a clear error.
	r.MeasurePair(1, 2, 64)
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "never recorded") {
		t.Fatalf("unknown pair not reported: %v", err)
	}
}
