// Package xiao reimplements the reverse-engineering approach of Xiao et
// al. (USENIX Security'16), the paper's "efficient but not generic"
// baseline. The tool uses the same row-buffer timing channel as DRAMDig
// but bakes in a structural assumption from the DDR3 single-DIMM era:
// every bank address function is either a single bit or an XOR of exactly
// two bits that appear in no other function.
//
// The assumption holds on the paper's settings No.1/No.3/No.4 and the
// tool resolves them within minutes. On settings with overlapping or wide
// functions (dual-rank channels, DDR4 bank groups) the two-bit flip test
// cannot see functions whose bits also feed other functions, so the tool
// resolves a strict subset and then stalls hunting for the rest — the
// paper's §IV-A observation ("stuck after resolving (16, 20), (17, 21),
// (18, 22) as 3 of 6 bank address functions" on No.6, which this
// reimplementation reproduces bit-for-bit).
package xiao

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"dramdig/internal/addr"
	"dramdig/internal/mapping"
	"dramdig/internal/timing"
)

// Config tunes the Xiao et al. reimplementation.
type Config struct {
	// Rounds per raw measurement (default 1600).
	Rounds int
	// Repeats per decision (default 3).
	Repeats int
	// BitTrials per bit/pair test (default 8).
	BitTrials int
	// RetrySweeps is how many times the tool re-sweeps pair candidates
	// before declaring itself stuck (default 3 — the original code
	// loops forever; the paper killed it manually).
	RetrySweeps int
	// Seed drives base-address selection.
	Seed int64
	// Logf receives progress lines.
	Logf func(format string, args ...any)
}

func (c *Config) setDefaults() {
	if c.Rounds == 0 {
		c.Rounds = 1600
	}
	if c.Repeats == 0 {
		c.Repeats = 3
	}
	if c.BitTrials == 0 {
		c.BitTrials = 8
	}
	if c.RetrySweeps == 0 {
		c.RetrySweeps = 3
	}
}

// ErrStuck reports the tool's non-generic failure mode: it resolved only
// a subset of the bank functions and cannot make further progress.
type ErrStuck struct {
	// Resolved is the partial function list.
	Resolved []uint64
	// Want is the required function count.
	Want int
}

// Error renders the failure like the paper describes it.
func (e *ErrStuck) Error() string {
	m := &mapping.Mapping{BankFuncs: e.Resolved}
	return fmt.Sprintf("xiao: stuck after resolving %s as %d of %d bank address functions",
		m.FuncString(), len(e.Resolved), e.Want)
}

// Result is the tool's output on success.
type Result struct {
	Funcs           []uint64
	RowBits         []uint
	ColBits         []uint
	Mapping         *mapping.Mapping
	TotalSimSeconds float64
	WallSeconds     float64
	Measurements    uint64
}

// String renders the result.
func (r *Result) String() string {
	m := &mapping.Mapping{BankFuncs: r.Funcs}
	return fmt.Sprintf("banks: %s | rows: %s | cols: %s",
		m.FuncString(), addr.FormatBitRanges(r.RowBits), addr.FormatBitRanges(r.ColBits))
}

// Tool is a configured instance.
type Tool struct {
	cfg    Config
	target timing.Target
	ctx    context.Context
	meter  *timing.Meter
	rng    *rand.Rand
	logf   func(string, ...any)
}

// New creates an instance.
func New(target timing.Target, cfg Config) (*Tool, error) {
	cfg.setDefaults()
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Tool{
		cfg:    cfg,
		target: target,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		logf:   logf,
	}, nil
}

// votePairs measures pairs differing in mask; true when a majority
// conflicts.
func (t *Tool) votePairs(mask uint64) (bool, bool) {
	pool := t.target.Pool()
	var found, high int
	attempts := t.cfg.BitTrials * 64
	for found < t.cfg.BitTrials && attempts > 0 {
		attempts--
		a := pool.RandomAddr(t.rng, 1<<timing.CacheLineBits)
		b := a.FlipMask(mask)
		if !pool.Contains(b) {
			continue
		}
		found++
		if t.meter.IsConflict(a, b) {
			high++
		}
	}
	if found == 0 {
		return false, false
	}
	return 2*high > found, true
}

// Run executes the tool: coarse bit classification, then the two-bit
// function sweep.
func (t *Tool) Run() (*Result, error) {
	return t.RunContext(context.Background())
}

// RunContext is Run under a context: the per-bit vote loops and the
// function sweeps poll it, so cancellation returns promptly with the
// context's error.
func (t *Tool) RunContext(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	t.ctx = ctx
	start := time.Now()
	clock0 := t.target.ClockNs()
	info := t.target.SysInfo()
	physBits := info.PhysBits()
	banks := info.TotalBanks()
	L := 0
	for 1<<(L+1) <= banks {
		L++
	}
	meter, err := timing.NewMeter(t.target, t.cfg.Rounds, t.cfg.Repeats)
	if err != nil {
		return nil, err
	}
	t.meter = meter
	if _, err := meter.CalibrateContext(ctx, t.rng, 24*banks+256); err != nil {
		return nil, fmt.Errorf("xiao: %w", err)
	}

	// Coarse classification (single- and two-bit flips, as in their
	// paper; identical to DRAMDig Step 1).
	var rowBits, colBits, bankBits []uint
	for b := uint(0); b < timing.CacheLineBits; b++ {
		colBits = append(colBits, b)
	}
	reachable := map[uint]bool{}
	for b := uint(timing.CacheLineBits); b < physBits; b++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		conflict, ok := t.votePairs(uint64(1) << b)
		if !ok {
			rowBits = append(rowBits, b) // top-of-space default
			continue
		}
		reachable[b] = true
		if conflict {
			rowBits = append(rowBits, b)
		}
	}
	if len(rowBits) == 0 {
		return nil, errors.New("xiao: no row bits found")
	}
	helper, _ := addr.MinMax(rowBits)
	rowSet := addr.MaskFromBits(rowBits)
	for b := uint(timing.CacheLineBits); b < physBits; b++ {
		if rowSet&(uint64(1)<<b) != 0 || !reachable[b] {
			continue
		}
		conflict, ok := t.votePairs((uint64(1) << b) | (uint64(1) << helper))
		if ok && conflict {
			colBits = append(colBits, b)
		} else {
			bankBits = append(bankBits, b)
		}
	}

	// Two-bit function sweep over the bank candidates: a flip of (i, j)
	// that still conflicts is a function (i, j) whose high bit is a row
	// bit. The sweep is repeated when too few functions emerge; on
	// machines violating the 2-bit-disjoint assumption it never
	// completes.
	var funcs []uint64
	seen := map[uint64]bool{}
	for sweep := 0; sweep < t.cfg.RetrySweeps && len(funcs) < L; sweep++ {
		for i := 0; i < len(bankBits); i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			for j := i + 1; j < len(bankBits); j++ {
				mask := (uint64(1) << bankBits[i]) | (uint64(1) << bankBits[j])
				if seen[mask] {
					continue
				}
				if conflict, ok := t.votePairs(mask); ok && conflict {
					seen[mask] = true
					funcs = append(funcs, mask)
				}
			}
		}
		// Pair a bank bit with a detected row bit: functions like
		// (14, 18) where 18 was *not* covered (single-rank DDR3).
		for _, i := range bankBits {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			for _, r := range rowBits {
				if r > i+8 {
					continue // their heuristic pairs nearby bits
				}
				mask := (uint64(1) << i) | (uint64(1) << r)
				if seen[mask] {
					continue
				}
				if conflict, ok := t.votePairs(mask); ok && conflict {
					seen[mask] = true
					funcs = append(funcs, mask)
				}
			}
		}
	}
	// Leftover bank bits in no resolved pair become single-bit
	// (channel) functions — but only when the leftover count exactly
	// matches the shortfall; otherwise the assignment is ambiguous and
	// the tool is stuck (its DDR3-era assumption does not hold).
	usedBits := uint64(0)
	for _, f := range funcs {
		usedBits |= f
	}
	var leftover []uint
	for _, b := range bankBits {
		if usedBits&(uint64(1)<<b) == 0 {
			leftover = append(leftover, b)
		}
	}
	if len(funcs)+len(leftover) == L {
		for _, b := range leftover {
			funcs = append(funcs, uint64(1)<<b)
		}
	}
	if len(funcs) != L {
		return nil, &ErrStuck{Resolved: funcs, Want: L}
	}

	// Shared row bits: the high bit of each resolved pair.
	usedBits = 0
	for _, f := range funcs {
		usedBits |= f
	}
	for _, f := range funcs {
		bits := addr.BitsFromMask(f)
		if len(bits) == 2 && rowSet&(uint64(1)<<bits[1]) == 0 {
			rowBits = append(rowBits, bits[1])
			rowSet |= uint64(1) << bits[1]
		}
	}
	// Columns: everything not row and not a function-only bit.
	var cols []uint
	funcOnly := usedBits &^ rowSet
	colSet := addr.MaskFromBits(colBits)
	for b := uint(0); b < physBits; b++ {
		bit := uint64(1) << b
		if colSet&bit != 0 || (rowSet&bit == 0 && funcOnly&bit == 0 && b >= timing.CacheLineBits) {
			cols = append(cols, b)
		}
	}
	res := &Result{
		Funcs:           funcs,
		RowBits:         addr.SortedCopy(rowBits),
		ColBits:         addr.SortedCopy(cols),
		TotalSimSeconds: (t.target.ClockNs() - clock0) / 1e9,
		WallSeconds:     time.Since(start).Seconds(),
		Measurements:    meter.Measurements(),
	}
	if m, err := mapping.New(physBits, res.Funcs, res.RowBits, res.ColBits); err == nil {
		res.Mapping = m
	}
	t.logf("resolved: %s", res)
	return res, nil
}
