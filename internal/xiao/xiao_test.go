package xiao

import (
	"errors"
	"strings"
	"testing"

	"dramdig/internal/machine"
)

// TestXiaoGenericity reproduces the paper's §IV-A finding: the tool works
// on the disjoint-2-bit-function DDR3 settings and gets stuck everywhere
// else. (The paper lists No.5 as working; structurally its functions
// share bits exactly like No.2's, so our reimplementation predicts the
// stall there too — documented in EXPERIMENTS.md.)
func TestXiaoGenericity(t *testing.T) {
	works := map[int]bool{1: true, 3: true, 4: true}
	for no := 1; no <= 9; no++ {
		m, err := machine.NewByNo(no, 31)
		if err != nil {
			t.Fatal(err)
		}
		tool, err := New(m, Config{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		res, err := tool.Run()
		var stuck *ErrStuck
		switch {
		case errors.As(err, &stuck):
			if works[no] {
				t.Errorf("No.%d: expected success, got %v", no, err)
			}
			if len(stuck.Resolved) >= stuck.Want {
				t.Errorf("No.%d: stuck with %d of %d functions?", no, len(stuck.Resolved), stuck.Want)
			}
		case err != nil:
			t.Errorf("No.%d: unexpected error %v", no, err)
		default:
			if !works[no] {
				t.Errorf("No.%d: expected the tool to be stuck, got %s", no, res)
			}
			if res.Mapping == nil || !res.Mapping.EquivalentTo(m.Truth()) {
				t.Errorf("No.%d: recovered wrong mapping %s", no, res)
			}
			if res.TotalSimSeconds > 600 {
				t.Errorf("No.%d: %f s is not 'within minutes'", no, res.TotalSimSeconds)
			}
		}
	}
}

// TestStuckMessageMatchesPaperStyle: the error message mirrors the
// paper's account ("stuck after resolving ... as k of n bank address
// functions").
func TestStuckMessageMatchesPaperStyle(t *testing.T) {
	m, _ := machine.NewByNo(6, 31)
	tool, _ := New(m, Config{Seed: 3})
	_, err := tool.Run()
	var stuck *ErrStuck
	if !errors.As(err, &stuck) {
		t.Fatalf("want ErrStuck on No.6, got %v", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "stuck after resolving") || !strings.Contains(msg, "of 6 bank address functions") {
		t.Errorf("message %q does not match the paper's account", msg)
	}
	// The resolved subset must be genuine functions of the machine.
	for _, f := range stuck.Resolved {
		found := false
		for _, tf := range m.Truth().BankFuncs {
			if f == tf {
				found = true
			}
		}
		if !found {
			t.Errorf("resolved non-function %#x", f)
		}
	}
}

// TestXiaoDeterministic: two runs with different seeds agree where the
// tool works.
func TestXiaoDeterministic(t *testing.T) {
	var outs []string
	for _, seed := range []int64{1, 77} {
		m, _ := machine.NewByNo(3, 13)
		tool, _ := New(m, Config{Seed: seed})
		res, err := tool.Run()
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, res.Mapping.Canonicalize().String())
	}
	if outs[0] != outs[1] {
		t.Errorf("outputs differ: %s vs %s", outs[0], outs[1])
	}
}
