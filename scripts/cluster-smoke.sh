#!/usr/bin/env bash
# End-to-end smoke test for the cluster subsystem: boot a coordinator
# in remote-dispatch mode plus two dramdig-worker processes, run one
# real campaign through the lease protocol with a W3C traceparent, and
# check that the campaign completes exactly once, that the span tree
# served by the coordinator contains both coordinator and worker spans
# under the inbound trace ID, that both workers registered (and the one
# that ran the job completed it), and that the dramdig_cluster_* metric
# families rendered and moved. CI runs this after the unit suites; run
# it locally with `./scripts/cluster-smoke.sh`.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR=${ADDR:-127.0.0.1:18081}
if curl -fsS --max-time 2 "http://$ADDR/v1/healthz" >/dev/null 2>&1; then
  echo "cluster-smoke: something is already listening on $ADDR (set ADDR to override)" >&2
  exit 1
fi
WORKDIR=$(mktemp -d)
# Wait for the killed processes to actually exit before removing the
# workdir: the daemon compacts its queue on shutdown, and an rm -rf
# racing that write loses. Waiting also keeps back-to-back runs from
# colliding on the listen address.
cleanup() {
  kill "${W1_PID:-}" "${W2_PID:-}" "${DAEMON_PID:-}" 2>/dev/null || true
  wait "${W1_PID:-}" "${W2_PID:-}" "${DAEMON_PID:-}" 2>/dev/null || true
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

go build -o "$WORKDIR/dramdigd" ./cmd/dramdigd
go build -o "$WORKDIR/dramdig-worker" ./cmd/dramdig-worker

# The short lease TTL makes workers heartbeat every ~80ms, so a
# campaign of ~19 serialized jobs crosses several heartbeats — enough
# to exercise checkpoint shipping without ever lapsing a live lease.
"$WORKDIR/dramdigd" -addr "$ADDR" -dispatch remote -lease-ttl 250ms \
  -cache-dir "$WORKDIR/cache" -queue-dir "$WORKDIR/queue" \
  -log-format json >"$WORKDIR/daemon.log" 2>&1 &
DAEMON_PID=$!

for i in $(seq 1 50); do
  if curl -fsS "http://$ADDR/v1/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
    echo "cluster-smoke: coordinator died during boot" >&2
    cat "$WORKDIR/daemon.log" >&2
    exit 1
  fi
  sleep 0.2
done

"$WORKDIR/dramdig-worker" -coordinator "http://$ADDR" -name smoke-w1 \
  -workers 1 -poll 100ms -log-format json >"$WORKDIR/w1.log" 2>&1 &
W1_PID=$!
"$WORKDIR/dramdig-worker" -coordinator "http://$ADDR" -name smoke-w2 \
  -workers 1 -poll 100ms -log-format json >"$WORKDIR/w2.log" 2>&1 &
W2_PID=$!

# One real campaign, submitted with a W3C traceparent so the whole
# cross-process pipeline joins our trace, driven to "done" by whichever
# worker leases it.
TRACE_ID="4bf92f3577b34da6a3ce929d0e0e4736"
TRACEPARENT="00-$TRACE_ID-00f067aa0ba902b7-01"
post=$(curl -fsS "http://$ADDR/v1/campaigns" \
  -H "traceparent: $TRACEPARENT" -d '{"machines":[-1],"generated":10,"seed":42,"workers":1}')
id=$(echo "$post" | jq -r .id)
for i in $(seq 1 150); do
  status=$(curl -fsS "http://$ADDR/v1/campaigns/$id" | jq -r .status)
  [ "$status" = done ] && break
  if [ "$status" = failed ]; then
    echo "cluster-smoke: campaign failed" >&2
    curl -fsS "http://$ADDR/v1/campaigns/$id" >&2
    cat "$WORKDIR/w1.log" "$WORKDIR/w2.log" >&2
    exit 1
  fi
  sleep 1
done
if [ "${status:-}" != done ]; then
  echo "cluster-smoke: campaign not done after 150s (status: ${status:-unknown})" >&2
  cat "$WORKDIR/daemon.log" "$WORKDIR/w1.log" "$WORKDIR/w2.log" >&2
  exit 1
fi

# Both workers registered; between them the campaign completed exactly
# once, and the remote run left its results in the coordinator's store.
workers=$(curl -fsS "http://$ADDR/v1/workers")
echo "$workers" | jq -e '.dispatch == "remote" and (.workers | length == 2)' >/dev/null \
  || { echo "cluster-smoke: bad worker registry: $workers" >&2; exit 1; }
echo "$workers" | jq -e '[.workers[].completed] | add == 1' >/dev/null \
  || { echo "cluster-smoke: campaign not completed exactly once: $workers" >&2; exit 1; }
fp=$(curl -fsS "http://$ADDR/v1/campaigns/$id" | jq -r '.report.jobs[0].machine_fingerprint')
curl -fsS "http://$ADDR/v1/mappings/$fp" >/dev/null \
  || { echo "cluster-smoke: worker-computed result $fp not served from the store" >&2; exit 1; }

# The span tree crosses the process boundary: coordinator spans
# (queue.wait, cluster.lease) and worker spans (worker.campaign,
# campaign.job, engine phases) on one inbound trace ID.
spans=$(curl -fsS "http://$ADDR/v1/campaigns/$id/spans")
echo "$spans" | jq -e --arg tid "$TRACE_ID" '.trace_id == $tid' >/dev/null \
  || { echo "cluster-smoke: span tree not on inbound trace (got $(echo "$spans" | jq -r .trace_id))" >&2; exit 1; }
names=$(echo "$spans" | jq -r '[.. | objects | .name? // empty] | join(" ")')
for want in queue.wait cluster.lease worker.campaign campaign.job engine.fine; do
  case " $names " in
    *" $want "*) ;;
    *) echo "cluster-smoke: span tree missing $want (have: $names)" >&2; exit 1 ;;
  esac
done
echo "$spans" | jq -e --arg tid "$TRACE_ID" '[.. | objects | .trace_id? // empty] | all(. == $tid)' >/dev/null \
  || { echo "cluster-smoke: span tree mixes trace IDs" >&2; exit 1; }

# The cluster metric families rendered and moved.
scrape=$(curl -fsS "http://$ADDR/v1/metrics")
for family in \
  dramdig_cluster_leases_granted_total \
  dramdig_cluster_heartbeats_total \
  dramdig_cluster_completions_total \
  dramdig_cluster_results_uploaded_total \
  dramdig_cluster_spans_ingested_total \
  dramdig_cluster_workers \
  dramdig_cluster_leases_active; do
  echo "$scrape" | grep -q "^# TYPE $family " \
    || { echo "cluster-smoke: family $family missing from scrape" >&2
         echo "$scrape" | grep '^# TYPE' >&2; exit 1; }
done
for moved in \
  "dramdig_cluster_leases_granted_total [1-9]" \
  "dramdig_cluster_heartbeats_total [1-9]" \
  "dramdig_cluster_completions_total 1" \
  "dramdig_cluster_results_uploaded_total [1-9]" \
  "dramdig_cluster_spans_ingested_total [1-9]" \
  "dramdig_cluster_workers 2"; do
  echo "$scrape" | grep -Eq "^$moved" \
    || { echo "cluster-smoke: expected \"$moved\" in scrape" >&2
         echo "$scrape" | grep '^dramdig_cluster' >&2; exit 1; }
done

# Fleet telemetry: every registry row reports liveness as an age (the
# old last_seen_unix timestamp is gone), and the worker that ran the
# job carries a metrics digest from its shipped snapshots.
echo "$workers" | jq -e '[.workers[].last_heartbeat_age_ms] | all(. >= 0)' >/dev/null \
  || { echo "cluster-smoke: bad last_heartbeat_age_ms: $workers" >&2; exit 1; }
echo "$workers" | jq -e '[.workers[] | has("last_seen_unix")] | any | not' >/dev/null \
  || { echo "cluster-smoke: last_seen_unix resurfaced: $workers" >&2; exit 1; }
echo "$workers" | jq -e '[.workers[] | select(.completed > 0) | .metrics.engine_samples] | add > 0' >/dev/null \
  || { echo "cluster-smoke: completing worker has no metrics digest: $workers" >&2; exit 1; }

# The federated scrape re-renders the workers' snapshots with an
# instance label per sample, and its engine totals agree with the
# per-worker digests /v1/workers serves from the same snapshots.
fed=$(curl -fsS "http://$ADDR/v1/cluster/metrics")
echo "$fed" | grep -Eq '^dramdig_engine_samples_total\{instance="smoke-w[12]"\} [1-9]' \
  || { echo "cluster-smoke: no instance-labeled engine samples in federation" >&2
       echo "$fed" | head -40 >&2; exit 1; }
echo "$fed" | grep -Eq '^dramdig_go_goroutines\{instance="smoke-w[12]"\} [1-9]' \
  || { echo "cluster-smoke: no worker runtime self-metrics in federation" >&2; exit 1; }
fed_samples=$(echo "$fed" | awk '/^dramdig_engine_samples_total\{/ {sum += $2} END {print sum+0}')
digest_samples=$(echo "$workers" | jq '[.workers[].metrics.engine_samples // 0] | add')
[ "$fed_samples" = "$digest_samples" ] \
  || { echo "cluster-smoke: federated engine samples ($fed_samples) != worker digests ($digest_samples)" >&2; exit 1; }

# The campaign timeline is one chronological view across both
# processes: queue lifecycle events plus spans, worker-attributed.
timeline=$(curl -fsS "http://$ADDR/v1/campaigns/$id/timeline")
echo "$timeline" | jq -e '.events | length > 0' >/dev/null \
  || { echo "cluster-smoke: empty timeline: $timeline" >&2; exit 1; }
echo "$timeline" | jq -e '[.events[].at_unix_nano] | . == sort' >/dev/null \
  || { echo "cluster-smoke: timeline not chronological" >&2; exit 1; }
echo "$timeline" | jq -e '[.events[] | select(.source == "queue") | .type] | index("leased") != null and index("done") != null' >/dev/null \
  || { echo "cluster-smoke: timeline missing queue lifecycle events" >&2; exit 1; }
echo "$timeline" | jq -e '[.events[] | select(.source == "span" and (.worker | strings | startswith("smoke-w")))] | length > 0' >/dev/null \
  || { echo "cluster-smoke: timeline has no worker-attributed span events" >&2; exit 1; }

nspans=$(echo "$spans" | jq '[.. | objects | .name? // empty] | length')
nevents=$(echo "$timeline" | jq '.events | length')
echo "cluster-smoke: ok (campaign $id completed once across 2 workers, $nspans spans, $nevents timeline events on trace $TRACE_ID)"
