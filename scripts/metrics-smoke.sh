#!/usr/bin/env bash
# End-to-end smoke test for dramdigd's observability surface: boot the
# daemon, run one real campaign through it with a W3C traceparent,
# scrape /v1/metrics and check that every layer's metric families are
# present and that the hot-path counters actually moved, then fetch the
# campaign's span tree and check it is rooted at the inbound trace ID
# with spans from every layer. CI runs this after the unit suites; run
# it locally with `./scripts/metrics-smoke.sh`.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR=${ADDR:-127.0.0.1:18080}
# A leftover listener on the port would answer the probes below and make
# every later assertion test the wrong process.
if curl -fsS --max-time 2 "http://$ADDR/v1/healthz" >/dev/null 2>&1; then
  echo "metrics-smoke: something is already listening on $ADDR (set ADDR to override)" >&2
  exit 1
fi
WORKDIR=$(mktemp -d)
trap 'kill "$DAEMON_PID" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

go build -o "$WORKDIR/dramdigd" ./cmd/dramdigd

"$WORKDIR/dramdigd" -addr "$ADDR" -cache-dir "$WORKDIR/cache" -queue-dir "$WORKDIR/queue" \
  -log-format json >"$WORKDIR/daemon.log" 2>&1 &
DAEMON_PID=$!

for i in $(seq 1 50); do
  if curl -fsS "http://$ADDR/v1/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
    echo "metrics-smoke: daemon died during boot" >&2
    cat "$WORKDIR/daemon.log" >&2
    exit 1
  fi
  sleep 0.2
done

# The healthz body carries the load-balancer probe fields.
health=$(curl -fsS "http://$ADDR/v1/healthz")
echo "$health" | jq -e '.status == "ok" and (.queue_depth | type == "number") and (.cache_entries | type == "number")' >/dev/null \
  || { echo "metrics-smoke: bad healthz body: $health" >&2; exit 1; }

# One real campaign over the cheapest paper setting, driven to "done".
# The submission carries a W3C traceparent so the whole pipeline joins
# our trace; the response must echo a traceparent on the same trace.
TRACE_ID="4bf92f3577b34da6a3ce929d0e0e4736"
TRACEPARENT="00-$TRACE_ID-00f067aa0ba902b7-01"
post=$(curl -fsS -D "$WORKDIR/post.headers" "http://$ADDR/v1/campaigns" \
  -H "traceparent: $TRACEPARENT" -d '{"machines":[1],"seed":42}')
id=$(echo "$post" | jq -r .id)
grep -qi "^traceparent: 00-$TRACE_ID-" "$WORKDIR/post.headers" \
  || { echo "metrics-smoke: response did not echo a traceparent on trace $TRACE_ID" >&2; \
       cat "$WORKDIR/post.headers" >&2; exit 1; }
for i in $(seq 1 150); do
  status=$(curl -fsS "http://$ADDR/v1/campaigns/$id" | jq -r .status)
  [ "$status" = done ] && break
  if [ "$status" = failed ]; then
    echo "metrics-smoke: campaign failed" >&2
    curl -fsS "http://$ADDR/v1/campaigns/$id" >&2
    exit 1
  fi
  sleep 1
done
if [ "${status:-}" != done ]; then
  echo "metrics-smoke: campaign not done after 150s (status: ${status:-unknown})" >&2
  exit 1
fi

scrape=$(curl -fsS "http://$ADDR/v1/metrics")

# Every layer's families must render.
for family in \
  dramdig_queue_depth \
  dramdig_wal_fsync_seconds \
  dramdig_store_hits_total \
  dramdig_engine_samples_total \
  dramdig_engine_sample_latency_ns \
  dramdig_campaign_jobs_started_total \
  dramdig_http_requests_total \
  dramdig_http_request_seconds \
  dramdig_sse_subscribers \
  dramdig_build_info \
  dramdig_trace_spans_finished_total; do
  echo "$scrape" | grep -q "^# TYPE $family " \
    || { echo "metrics-smoke: family $family missing from scrape" >&2; exit 1; }
done

# The campaign must have moved the hot-path counters.
for moved in \
  "dramdig_queue_submitted_total 1" \
  "dramdig_campaign_jobs_started_total 1" \
  "dramdig_campaign_jobs_succeeded_total 1"; do
  echo "$scrape" | grep -q "^$moved\$" \
    || { echo "metrics-smoke: expected \"$moved\" in scrape" >&2; exit 1; }
done
echo "$scrape" | grep -q '^dramdig_engine_samples_total [1-9]' \
  || { echo "metrics-smoke: engine recorded no samples" >&2; exit 1; }

# The campaign's span tree must be rooted at the inbound trace ID and
# contain spans from every layer the request crossed.
spans=$(curl -fsS "http://$ADDR/v1/campaigns/$id/spans")
echo "$spans" | jq -e --arg tid "$TRACE_ID" '.trace_id == $tid' >/dev/null \
  || { echo "metrics-smoke: span tree not on inbound trace (got $(echo "$spans" | jq -r .trace_id))" >&2; exit 1; }
echo "$spans" | jq -e '.spans | length > 0' >/dev/null \
  || { echo "metrics-smoke: span tree is empty" >&2; exit 1; }
names=$(echo "$spans" | jq -r '[.. | objects | .name? // empty] | join(" ")')
for want in queue.submit queue.wait scheduler.dispatch campaign.run campaign.job \
  engine.calibrate engine.coarse engine.partition engine.resolve engine.fine store.read; do
  case " $names " in
    *" $want "*) ;;
    *) echo "metrics-smoke: span tree missing $want (have: $names)" >&2; exit 1 ;;
  esac
done
# Every span in the tree carries the inbound trace ID.
echo "$spans" | jq -e --arg tid "$TRACE_ID" '[.. | objects | .trace_id? // empty] | all(. == $tid)' >/dev/null \
  || { echo "metrics-smoke: span tree mixes trace IDs" >&2; exit 1; }

# Every request logged one structured line with a request ID.
grep -q '"msg":"request"' "$WORKDIR/daemon.log" \
  || { echo "metrics-smoke: no structured request log lines" >&2; exit 1; }
grep -q '"request_id"' "$WORKDIR/daemon.log" \
  || { echo "metrics-smoke: request log lines carry no request_id" >&2; exit 1; }
# The campaign's transition log lines carry the inbound trace ID.
grep -q "\"trace_id\":\"$TRACE_ID\"" "$WORKDIR/daemon.log" \
  || { echo "metrics-smoke: no log line carries the inbound trace_id" >&2; exit 1; }

nspans=$(echo "$spans" | jq '[.. | objects | .name? // empty] | length')
echo "metrics-smoke: ok (campaign $id, $(echo "$scrape" | grep -c '^dramdig_') dramdig series, $nspans spans on trace $TRACE_ID)"
