#!/usr/bin/env bash
# End-to-end smoke test for dramdigd's observability surface: boot the
# daemon, run one real campaign through it, scrape /v1/metrics and check
# that every layer's metric families are present and that the hot-path
# counters actually moved. CI runs this after the unit suites; run it
# locally with `./scripts/metrics-smoke.sh`.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR=${ADDR:-127.0.0.1:18080}
# A leftover listener on the port would answer the probes below and make
# every later assertion test the wrong process.
if curl -fsS --max-time 2 "http://$ADDR/v1/healthz" >/dev/null 2>&1; then
  echo "metrics-smoke: something is already listening on $ADDR (set ADDR to override)" >&2
  exit 1
fi
WORKDIR=$(mktemp -d)
trap 'kill "$DAEMON_PID" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

go build -o "$WORKDIR/dramdigd" ./cmd/dramdigd

"$WORKDIR/dramdigd" -addr "$ADDR" -cache-dir "$WORKDIR/cache" -queue-dir "$WORKDIR/queue" \
  -log-format json >"$WORKDIR/daemon.log" 2>&1 &
DAEMON_PID=$!

for i in $(seq 1 50); do
  if curl -fsS "http://$ADDR/v1/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
    echo "metrics-smoke: daemon died during boot" >&2
    cat "$WORKDIR/daemon.log" >&2
    exit 1
  fi
  sleep 0.2
done

# The healthz body carries the load-balancer probe fields.
health=$(curl -fsS "http://$ADDR/v1/healthz")
echo "$health" | jq -e '.status == "ok" and (.queue_depth | type == "number") and (.cache_entries | type == "number")' >/dev/null \
  || { echo "metrics-smoke: bad healthz body: $health" >&2; exit 1; }

# One real campaign over the cheapest paper setting, driven to "done".
id=$(curl -fsS "http://$ADDR/v1/campaigns" -d '{"machines":[1],"seed":42}' | jq -r .id)
for i in $(seq 1 150); do
  status=$(curl -fsS "http://$ADDR/v1/campaigns/$id" | jq -r .status)
  [ "$status" = done ] && break
  if [ "$status" = failed ]; then
    echo "metrics-smoke: campaign failed" >&2
    curl -fsS "http://$ADDR/v1/campaigns/$id" >&2
    exit 1
  fi
  sleep 1
done
if [ "${status:-}" != done ]; then
  echo "metrics-smoke: campaign not done after 150s (status: ${status:-unknown})" >&2
  exit 1
fi

scrape=$(curl -fsS "http://$ADDR/v1/metrics")

# Every layer's families must render.
for family in \
  dramdig_queue_depth \
  dramdig_wal_fsync_seconds \
  dramdig_store_hits_total \
  dramdig_engine_samples_total \
  dramdig_engine_sample_latency_ns \
  dramdig_campaign_jobs_started_total \
  dramdig_http_requests_total \
  dramdig_http_request_seconds \
  dramdig_sse_subscribers; do
  echo "$scrape" | grep -q "^# TYPE $family " \
    || { echo "metrics-smoke: family $family missing from scrape" >&2; exit 1; }
done

# The campaign must have moved the hot-path counters.
for moved in \
  "dramdig_queue_submitted_total 1" \
  "dramdig_campaign_jobs_started_total 1" \
  "dramdig_campaign_jobs_succeeded_total 1"; do
  echo "$scrape" | grep -q "^$moved\$" \
    || { echo "metrics-smoke: expected \"$moved\" in scrape" >&2; exit 1; }
done
echo "$scrape" | grep -q '^dramdig_engine_samples_total [1-9]' \
  || { echo "metrics-smoke: engine recorded no samples" >&2; exit 1; }

# Every request logged one structured line with a request ID.
grep -q '"msg":"request"' "$WORKDIR/daemon.log" \
  || { echo "metrics-smoke: no structured request log lines" >&2; exit 1; }
grep -q '"request_id"' "$WORKDIR/daemon.log" \
  || { echo "metrics-smoke: request log lines carry no request_id" >&2; exit 1; }

echo "metrics-smoke: ok (campaign $id, $(echo "$scrape" | grep -c '^dramdig_') dramdig series)"
