#!/usr/bin/env bash
# End-to-end smoke test for the storage layer: boot dramdigd with a
# small -store-max-bytes, run a real campaign, push the disk tier past
# the bound with cluster uploads and check that LRU eviction holds it,
# that the GC reclaims orphaned traces while referenced ones survive,
# that dramdig_store_disk_bytes tracks `du` within one segment, that
# GET /v1/mappings/{fp} serves ETags and honors If-None-Match, and that
# a restart on the same directories recovers the segments. CI runs this
# after the unit suites; run it locally with `./scripts/storage-smoke.sh`.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR=${ADDR:-127.0.0.1:18081}
MAX_BYTES=8388608        # disk-tier bound: fits one ~3MB campaign trace, overflows fast
SEGMENT=1048576          # segment target at this bound (min of 1MiB default, MaxBytes/4)
# A leftover listener on the port would answer the probes below and make
# every later assertion test the wrong process.
if curl -fsS --max-time 2 "http://$ADDR/v1/healthz" >/dev/null 2>&1; then
  echo "storage-smoke: something is already listening on $ADDR (set ADDR to override)" >&2
  exit 1
fi
WORKDIR=$(mktemp -d)
trap 'kill "$DAEMON_PID" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

go build -o "$WORKDIR/dramdigd" ./cmd/dramdigd

boot_daemon() {
  "$WORKDIR/dramdigd" -addr "$ADDR" \
    -cache-dir "$WORKDIR/cache" -trace-dir "$WORKDIR/cache" -queue-dir "$WORKDIR/queue" \
    -store-max-bytes "$MAX_BYTES" -store-gc-interval 1s -store-gc-grace 2s \
    -log-format json >>"$WORKDIR/daemon.log" 2>&1 &
  DAEMON_PID=$!
  for i in $(seq 1 50); do
    if curl -fsS "http://$ADDR/v1/healthz" >/dev/null 2>&1; then return 0; fi
    if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
      echo "storage-smoke: daemon died during boot" >&2
      cat "$WORKDIR/daemon.log" >&2
      exit 1
    fi
    sleep 0.2
  done
  echo "storage-smoke: daemon never became healthy" >&2
  exit 1
}
boot_daemon

# One real campaign over the cheapest paper setting, driven to "done".
# Its job stays in the queue's terminal window, so its trace is
# referenced and must survive every GC pass below.
id=$(curl -fsS "http://$ADDR/v1/campaigns" -d '{"machines":[1],"seed":42}' | jq -r .id)
for i in $(seq 1 150); do
  status=$(curl -fsS "http://$ADDR/v1/campaigns/$id" | jq -r .status)
  [ "$status" = done ] && break
  if [ "$status" = failed ]; then
    echo "storage-smoke: campaign failed" >&2
    curl -fsS "http://$ADDR/v1/campaigns/$id" >&2
    exit 1
  fi
  sleep 1
done
[ "${status:-}" = done ] || { echo "storage-smoke: campaign not done after 150s" >&2; exit 1; }

real_fp=$(curl -fsS "http://$ADDR/v1/campaigns/$id/trace" | jq -r '.traces[0].machine_fingerprint')
[ "${#real_fp}" = 64 ] || { echo "storage-smoke: bad campaign fingerprint $real_fp" >&2; exit 1; }
curl -fsS "http://$ADDR/v1/traces/$real_fp" -o /dev/null \
  || { echo "storage-smoke: campaign trace not stored" >&2; exit 1; }

# --- orphan reclamation -----------------------------------------------
# A trace uploaded under a fingerprint no retained job references is an
# orphan: the GC must reap it once the grace period passes, while the
# campaign's referenced trace survives.
orphan_fp=$(printf '%064x' 3735928559)
head -c 4096 /dev/zero | curl -fsS -X PUT --data-binary @- \
  "http://$ADDR/v1/cluster/traces/$orphan_fp" >/dev/null
for i in $(seq 1 60); do
  code=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/v1/traces/$orphan_fp")
  [ "$code" = 404 ] && break
  sleep 0.5
done
[ "${code:-}" = 404 ] \
  || { echo "storage-smoke: GC never reaped the orphaned trace (last status $code)" >&2; exit 1; }
curl -fsS "http://$ADDR/v1/traces/$real_fp" -o /dev/null \
  || { echo "storage-smoke: GC reaped the referenced campaign trace" >&2; exit 1; }

# --- size bound under write volume ------------------------------------
# Keep the campaign's result record so the restart check below can
# assert it survives: the volume phase streams ~3x MAX_BYTES through
# the tier, and LRU eviction is free to drop anything cold.
mapping=$(curl -fsS "http://$ADDR/v1/mappings/$real_fp")

# Push ~3x MAX_BYTES of trace blobs through the cluster upload path.
# Eviction is enforced synchronously on every write; the only slack is
# one segment for a GC compaction caught mid-copy (live records are
# copied into the active segment before the old one is removed).
seg_dir="$WORKDIR/cache/segments"
for i in $(seq 1 24); do
  fp=$(printf '%056x%08x' 193 "$i")
  head -c "$SEGMENT" /dev/urandom | curl -fsS -X PUT --data-binary @- \
    "http://$ADDR/v1/cluster/traces/$fp" >/dev/null
  used=$(du -sb "$seg_dir" | cut -f1)
  if [ "$used" -gt $((MAX_BYTES + SEGMENT)) ]; then
    echo "storage-smoke: disk tier over bound mid-volume: $used > $MAX_BYTES + one segment" >&2
    exit 1
  fi
done

scrape=$(curl -fsS "http://$ADDR/v1/metrics")
metric() { echo "$scrape" | awk -v m="$1" '$1 == m { print int($2) }'; }
evicted=$(metric dramdig_store_gc_evicted_total)
gc_runs=$(metric dramdig_store_gc_runs_total)
reclaimed=$(metric dramdig_store_gc_reclaimed_blobs_total)
[ "${evicted:-0}" -gt 0 ] || { echo "storage-smoke: eviction counter never moved" >&2; exit 1; }
[ "${gc_runs:-0}" -gt 0 ] || { echo "storage-smoke: GC never ran" >&2; exit 1; }
[ "${reclaimed:-0}" -gt 0 ] || { echo "storage-smoke: GC reclaimed nothing" >&2; exit 1; }

# Once the GC settles (two identical consecutive disk_bytes reads), the
# gauge must track `du` of the segment directory within one segment.
prev=-1
for i in $(seq 1 60); do
  scrape=$(curl -fsS "http://$ADDR/v1/metrics")
  disk_bytes=$(metric dramdig_store_disk_bytes)
  [ "$disk_bytes" = "$prev" ] && break
  prev=$disk_bytes
  sleep 0.5
done
used=$(du -sb "$seg_dir" | cut -f1)
delta=$((disk_bytes - used)); [ "$delta" -lt 0 ] && delta=$((-delta))
if [ "$delta" -gt "$SEGMENT" ]; then
  echo "storage-smoke: dramdig_store_disk_bytes=$disk_bytes but du=$used (delta $delta > one segment $SEGMENT)" >&2
  exit 1
fi
if [ "$used" -gt "$MAX_BYTES" ]; then
  echo "storage-smoke: disk tier over bound after GC settled: $used > $MAX_BYTES bytes" >&2
  exit 1
fi

# Re-store the campaign's result record (the volume phase may have
# evicted it as LRU) so the restart below must serve it from segments.
echo "$mapping" | curl -fsS -X PUT --data-binary @- \
  "http://$ADDR/v1/cluster/results/$real_fp" >/dev/null

# --- ETag / conditional GET -------------------------------------------
curl -fsS -D "$WORKDIR/map.headers" "http://$ADDR/v1/mappings/$real_fp" -o /dev/null
etag=$(awk -F': ' 'tolower($1) == "etag" { print $2 }' "$WORKDIR/map.headers" | tr -d '\r')
[ "$etag" = "\"$real_fp\"" ] \
  || { echo "storage-smoke: ETag $etag does not match fingerprint" >&2; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' -H "If-None-Match: $etag" \
  "http://$ADDR/v1/mappings/$real_fp")
[ "$code" = 304 ] || { echo "storage-smoke: If-None-Match got $code, want 304" >&2; exit 1; }

# --- restart recovery --------------------------------------------------
kill "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
boot_daemon
curl -fsS "http://$ADDR/v1/healthz" | jq -e '.status == "ok"' >/dev/null \
  || { echo "storage-smoke: daemon unhealthy after restart" >&2; exit 1; }
curl -fsS "http://$ADDR/v1/mappings/$real_fp" | jq -e --arg fp "$real_fp" '.fingerprint == $fp' >/dev/null \
  || { echo "storage-smoke: campaign mapping lost across restart" >&2; exit 1; }
used=$(du -sb "$seg_dir" | cut -f1)
if [ "$used" -gt "$MAX_BYTES" ]; then
  echo "storage-smoke: disk tier over bound after restart: $used > $MAX_BYTES bytes" >&2
  exit 1
fi

echo "storage-smoke: ok (campaign $id, bound $MAX_BYTES held at $used bytes, $evicted evicted, $reclaimed reclaimed over $gc_runs GC runs)"
